"""The fleet simulation used by the Figure 2–4 experiments.

Wires a :class:`repro.runtime.cloud.ContainerCloud` into racks with
breakers, attaches a benign tenant driver per host, and records wall-power
traces at a configurable sampling interval — the facility-side ground
truth against which the attacker's RAPL-derived view is compared.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional

from repro.datacenter.breaker import CircuitBreaker
from repro.datacenter.population import TenantPopulation, container_name_for
from repro.datacenter.tenants import DiurnalProfile, DiurnalTenantDriver
from repro.datacenter.topology import Rack, ServerPowerConfig, WallPowerCache
from repro.errors import SimulationError
from repro.obs.tracer import SpanTracer
from repro.runtime.cloud import ContainerCloud, PROVIDER_PROFILES, ProviderProfile
from repro.sim.fastforward import FastForwardEngine
from repro.sim.faults import FaultInjector, FaultSchedule
from repro.sim.metrics import SimMetrics, SubsystemTimings, WallTimer
from repro.sim.rng import DeterministicRNG


@dataclass
class PowerTrace:
    """A sampled power time series with averaging helpers.

    ``gaps`` records the nominal times of samples that could not be
    taken (the machine was down); a gapped trace stays usable — the
    statistics below simply describe the samples that exist.

    ``peak``/``trough``/``mean`` are maintained incrementally on
    :meth:`append` (the running sum folds left-to-right, exactly like
    ``sum()`` over the list would), so reading them is O(1) no matter how
    long the trace has grown.

    ``downtime`` is populated only on traces produced by
    :meth:`averaged`: one fraction per emitted sample, the share of the
    window's nominal samples that were gap markers in the source trace
    (0.0 = fully observed window, approaching 1.0 = mostly down).
    """

    times: List[float] = field(default_factory=list)
    watts: List[float] = field(default_factory=list)
    gaps: List[float] = field(default_factory=list)
    downtime: List[float] = field(default_factory=list)
    _peak: float = field(default=-math.inf, init=False, repr=False)
    _trough: float = field(default=math.inf, init=False, repr=False)
    _sum: float = field(default=0.0, init=False, repr=False)

    def __post_init__(self) -> None:
        for w in self.watts:
            self._fold(w)

    def _fold(self, w: float) -> None:
        if w > self._peak:
            self._peak = w
        if w < self._trough:
            self._trough = w
        self._sum += w

    def append(self, t: float, w: float) -> None:
        """Record one sample (timestamps must be nondecreasing)."""
        if self.times and t < self.times[-1]:
            raise SimulationError(f"trace timestamps must not decrease: {t}")
        self.times.append(t)
        self.watts.append(w)
        self._fold(w)

    def note_gap(self, t: float) -> None:
        """Record that the sample nominally due at ``t`` was missed."""
        self.gaps.append(t)

    def __len__(self) -> int:
        return len(self.times)

    def _require_samples(self, what: str) -> None:
        if not self.watts:
            raise SimulationError(
                f"cannot compute {what} of an empty power trace"
                f" ({len(self.gaps)} gap(s) recorded)"
            )

    @property
    def peak(self) -> float:
        """Maximum sampled power (O(1), maintained on append)."""
        self._require_samples("peak")
        return self._peak

    @property
    def trough(self) -> float:
        """Minimum sampled power (O(1), maintained on append)."""
        self._require_samples("trough")
        return self._trough

    @property
    def mean(self) -> float:
        """Mean sampled power (O(1), maintained on append)."""
        self._require_samples("mean")
        return self._sum / len(self.watts)

    @property
    def swing_fraction(self) -> float:
        """(peak − trough)/trough — Figure 2 reports 34.72%."""
        self._require_samples("swing fraction")
        trough = self.trough
        if trough == 0:
            raise SimulationError(
                "swing fraction undefined: trace trough is 0 W"
                " (every sampled server was dark)"
            )
        return (self.peak - trough) / trough

    def averaged(self, window_s: float) -> "PowerTrace":
        """Resample by averaging fixed windows (Figure 2's 30 s view).

        Single pass with a running per-window sum. Windows are anchored at
        ``times[0]``; every emitted sample sits at its own window's start
        regardless of how many empty windows the samples skipped (the old
        implementation only re-anchored the bucket index when the bucket
        was non-empty), and each wholly-empty window in the interior is
        recorded as a gap marker rather than silently dropped.

        Source gap markers (samples that were *due* but missed because
        the machine was down) are folded into the window they fall in as
        fractional ``downtime`` — a window with 27 samples and 3 gaps
        averages the 27 and reports 0.1 downtime, instead of the gaps
        silently vanishing into a slightly-smaller divisor. Windows past
        the last sample that hold only gap markers become gap markers on
        the output.
        """
        if window_s <= 0:
            raise SimulationError(f"window must be positive: {window_s}")
        out = PowerTrace()
        if not self.times:
            return out
        start = self.times[0]
        # bucket the source's gap markers by window index up front;
        # markers before the first sample's window (gi < 0) have no
        # window to belong to and keep their old interpretation: dropped
        gap_counts: Dict[int, int] = {}
        for g in self.gaps:
            gi = int((g - start) // window_s)
            if gi >= 0:
                gap_counts[gi] = gap_counts.get(gi, 0) + 1

        def emit(index: int, total: float, n: int) -> None:
            missed = gap_counts.pop(index, 0)
            out.append(start + index * window_s, total / n)
            out.downtime.append(missed / (missed + n))

        bucket_index = 0
        bucket_sum = 0.0
        bucket_n = 0
        for t, w in zip(self.times, self.watts):
            index = int((t - start) // window_s)
            if index != bucket_index:
                # the first sample lands in window 0, so the open bucket
                # is never empty when a later sample moves past it
                emit(bucket_index, bucket_sum, bucket_n)
                for skipped in range(bucket_index + 1, index):
                    gap_counts.pop(skipped, None)
                    out.note_gap(start + skipped * window_s)
                bucket_index = index
                bucket_sum = 0.0
                bucket_n = 0
            bucket_sum += w
            bucket_n += 1
        emit(bucket_index, bucket_sum, bucket_n)
        # trailing windows that saw only missed samples
        for gi in sorted(gap_counts):
            if gi > bucket_index:
                out.note_gap(start + gi * window_s)
        return out

    def window(self, t0: float, t1: float) -> "PowerTrace":
        """The sub-trace with t0 <= t < t1 (gap markers carried along)."""
        out = PowerTrace()
        for t, w in zip(self.times, self.watts):
            if t0 <= t < t1:
                out.append(t, w)
        out.gaps = [t for t in self.gaps if t0 <= t < t1]
        return out


class DatacenterSimulation:
    """A cloud fleet + racks + breakers + benign tenants + tracing."""

    def __init__(
        self,
        profile: Optional[ProviderProfile] = None,
        servers: int = 8,
        rack_size: int = 8,
        breaker_rated_watts: float = 1300.0,
        seed: int = 0,
        tenant_profile: Optional[DiurnalProfile] = None,
        power_config: Optional[ServerPowerConfig] = None,
        sample_interval_s: float = 1.0,
        breaker_knee_ratio: float = 0.98,
        max_coalesce_s: float = 3600.0,
        tenants_per_host: int = 1,
        population: str = "columnar",
        hosts: str = "objects",
    ):
        if servers < 1 or rack_size < 1:
            raise SimulationError("need at least one server and rack slot")
        if tenants_per_host < 1:
            raise SimulationError(
                f"tenants_per_host must be >= 1: {tenants_per_host}"
            )
        if population not in ("columnar", "objects"):
            raise SimulationError(
                f"population must be 'columnar' or 'objects': {population!r}"
            )
        if hosts not in ("columnar", "objects"):
            raise SimulationError(
                f"hosts must be 'columnar' or 'objects': {hosts!r}"
            )
        if hosts == "columnar" and population != "columnar":
            raise SimulationError(
                "hosts='columnar' requires the columnar population: the"
                " cold-host deferral couples to its demand columns"
            )
        if sample_interval_s <= 0:
            raise SimulationError(
                f"sample interval must be positive: {sample_interval_s}"
            )
        if not 0.0 < breaker_knee_ratio <= 1.0:
            raise SimulationError(
                f"breaker knee ratio must be in (0, 1]: {breaker_knee_ratio}"
            )
        self.profile = profile or PROVIDER_PROFILES["CC1"]
        self.cloud = ContainerCloud(self.profile, seed=seed, servers=servers)
        self.power_config = power_config or ServerPowerConfig()
        self.sample_interval_s = sample_interval_s
        self.seed = seed
        self.rack_size = rack_size
        self.tenant_profile = tenant_profile

        #: rack-sharded parallel engine (created by ``run(parallel=N)``);
        #: assigned before anything reads ``self.now``
        self._parallel = None

        #: per-tick wall-power memo shared by the breaker feed, the
        #: coalescing knee guard, and the trace sampler
        self.power_cache = WallPowerCache(self.power_config)

        self.racks: List[Rack] = []
        kernels = [h.kernel for h in self.cloud.hosts]
        for start in range(0, servers, rack_size):
            group = kernels[start : start + rack_size]
            rack = Rack(
                name=f"rack-{start // rack_size}",
                kernels=group,
                breaker=CircuitBreaker(
                    name=f"breaker-{start // rack_size}",
                    rated_watts=breaker_rated_watts * len(group) / rack_size,
                ),
                power_config=self.power_config,
                power_cache=self.power_cache,
            )
            self.racks.append(rack)

        #: how many benign tenants multiplex onto each host (the demand
        #: plane scales with servers * tenants_per_host, not with servers)
        self.tenants_per_host = tenants_per_host
        self.population_mode = population
        if population == "columnar":
            #: the whole demand plane as numpy columns; ``self.tenants``
            #: are per-object views for probing (bit-identical to drivers)
            self.population: Optional[TenantPopulation] = TenantPopulation.for_hosts(
                self.cloud.rng,
                [host.kernel for host in self.cloud.hosts],
                [host.engine for host in self.cloud.hosts],
                tenants_per_host=tenants_per_host,
                profile=tenant_profile,
            )
            self.tenants = self.population.views()
        else:
            self.population = None
            self.tenants: List[DiurnalTenantDriver] = [
                DiurnalTenantDriver(
                    kernel=host.kernel,
                    rng=self.cloud.rng.fork(f"tenant-{i * tenants_per_host + j}"),
                    profile=tenant_profile,
                    engine=host.engine,
                    container_name=container_name_for(j, tenants_per_host),
                )
                for i, host in enumerate(self.cloud.hosts)
                for j in range(tenants_per_host)
            ]

        #: columnar host engine (``hosts="columnar"``): cold hosts tick
        #: as numpy column sweeps and materialize to full kernels lazily;
        #: ``None`` in the per-object reference mode. See docs/hostengine.md.
        self.host_mode = hosts
        self.host_engine = None
        if hosts == "columnar":
            from repro.kernel.columnar import ColumnarHostEngine

            self.host_engine = ColumnarHostEngine(
                [h.kernel for h in self.cloud.hosts],
                [h.engine for h in self.cloud.hosts],
                self.cloud.clock,
                power_config=self.power_config,
                population=self.population,
            )
            for i, host in enumerate(self.cloud.hosts):
                host.engine.host_engine = self.host_engine
                host.engine.host_index = i
            self.power_cache.host_engine = self.host_engine
            self.host_engine.adopt_all()

        self.aggregate_trace = PowerTrace()
        self.server_traces: Dict[int, PowerTrace] = {
            i: PowerTrace() for i in range(servers)
        }
        #: samples land at ``_sample_origin + k * sample_interval_s`` —
        #: computed from an integer counter so timestamps sit on exact
        #: interval multiples regardless of the tick size ``dt``
        self._sample_origin = self.now
        self._sample_count = 0

        #: id(kernel) -> server index, built once (kernels never change)
        self._kernel_index: Dict[int, int] = {
            id(h.kernel): i for i, h in enumerate(self.cloud.hosts)
        }

        #: tick-coalescing fast-forward (engaged by ``run(coalesce=True)``)
        self.breaker_knee_ratio = breaker_knee_ratio
        self.fastforward = FastForwardEngine(max_step_s=max_coalesce_s)
        self.metrics: SimMetrics = self.fastforward.metrics
        #: extra event-horizon callables ``now -> absolute next event time``
        #: (attack strategies register theirs here)
        self.horizon_sources: List[Callable[[float], float]] = []

        #: deterministic fault replay (``None`` = perfect substrate)
        self.fault_injector: Optional[FaultInjector] = None

        #: opt-in span tracer (``None`` until :meth:`enable_tracing`)
        self.tracer: Optional[SpanTracer] = None

        #: opt-in live operations plane (``None`` until :meth:`enable_ops`)
        self._ops = None

        #: opt-in checkpoint/supervision config (:meth:`enable_resilience`)
        self.resilience = None
        #: strategy-registered state providers folded into each manifest
        #: (key -> zero-arg callable); once any are present, checkpoints
        #: fire only at :meth:`checkpoint_safepoint` calls
        self.checkpoint_extras: Dict[str, Callable[[], object]] = {}
        #: manifest extras from a resumed run, for strategies to restore
        self.restored_extras: Dict[str, object] = {}
        #: replay cursor (resume): caller windows at or before
        #: ``_replay_until`` were already executed by the checkpointed run
        self._replay_until: Optional[float] = None
        self._replay_cursor: Optional[float] = None

        self._start_time = self.cloud.clock.now

    def install_faults(
        self, schedule: FaultSchedule, seed: Optional[int] = None
    ) -> FaultInjector:
        """Attach a seeded fault injector to the fleet.

        ``seed`` defaults to the schedule's own seed. From the next
        :meth:`run` on, due faults apply before each tick is planned,
        fault boundaries are coalescing barriers, crashed servers go dark
        with per-server trace gaps, and sensor faults act on every read
        path of the affected hosts. See ``docs/faults.md``.
        """
        if self.fault_injector is not None:
            raise SimulationError("fault injector already installed")
        if self._parallel is not None:
            raise SimulationError(
                "install faults before the first parallel run: shard"
                " workers partition the schedule at startup"
            )
        rng = DeterministicRNG(schedule.seed if seed is None else seed)
        injector = FaultInjector(
            schedule,
            rng,
            kernels=[h.kernel for h in self.cloud.hosts],
            engines=[h.engine for h in self.cloud.hosts],
            racks=self.racks,
            populations=() if self.population is None else (self.population,),
        )
        injector.tracer = self.tracer
        injector.host_engine = self.host_engine
        self.fault_injector = injector
        self.horizon_sources.append(injector.next_barrier)
        return injector

    def enable_tracing(
        self, capacity: int = 65536, spill_dir: Optional[str] = None
    ) -> SpanTracer:
        """Attach an opt-in span tracer recording a clock-aligned timeline.

        Must be called before the first parallel run: shard workers build
        their own ring buffers at startup and flush them to the driver at
        every barrier. Spans land on the ``driver`` track, fault events
        as instants on ``fault``; the parallel engine adds ``barrier``
        and per-shard tracks. Idempotent — repeated calls return the
        existing tracer. With ``spill_dir`` set, events evicted past ring
        capacity rotate into JSONL segments there (every process spills
        to the same directory) and :meth:`SpanTracer.timeline` stitches
        them back, instead of dropping the oldest. See
        ``docs/observability.md`` and ``docs/ops.md``.
        """
        if self._parallel is not None:
            raise SimulationError(
                "enable tracing before the first parallel run: shard"
                " workers install their tracers at startup"
            )
        if self.tracer is None:
            self.tracer = SpanTracer(
                now_fn=lambda: self.now, track="driver", capacity=capacity
            )
            if self.fault_injector is not None:
                self.fault_injector.tracer = self.tracer
        if spill_dir is not None:
            self.tracer.enable_spill(spill_dir)
        return self.tracer

    def enable_ops(
        self,
        directory: str,
        every_sim_s: Optional[float] = 60.0,
        every_wall_s: Optional[float] = None,
        port: Optional[int] = None,
        host: str = "127.0.0.1",
    ):
        """Attach the live operations plane (see ``docs/ops.md``).

        Streams full registry snapshots into ``<directory>/metrics.jsonl``
        at the given cadence (resume-idempotent: reopening an existing
        stream continues after its last record), and with ``port`` set
        serves ``/metrics``, ``/status`` and ``/healthz`` from a daemon
        thread (``port=0`` picks a free one). The hot-loop cost when ops
        is never enabled is one ``is not None`` check per tick.
        """
        from repro.obs.ops import OpsPlane

        if self._ops is not None:
            raise SimulationError("ops plane already enabled")
        self._ops = OpsPlane(
            directory,
            self.metrics.registry,
            self.ops_status,
            every_sim_s=every_sim_s,
            every_wall_s=every_wall_s,
            port=port,
            host=host,
        )
        return self._ops

    @property
    def ops(self):
        """The live operations plane, or ``None`` (read-only handle)."""
        return self._ops

    def ops_status(self) -> Dict[str, object]:
        """Campaign progress for the ops ``/status`` endpoint.

        Reads only driver-local state (plain attributes under the GIL) —
        never posts control frames — so it is safe to call from the
        server thread mid-run without perturbing the barrier protocol.
        """
        m = self.metrics
        status: Dict[str, object] = {
            "now": self.now,
            "start_time": self._start_time,
            "virtual_seconds": m.virtual_seconds,
            "ticks": m.ticks,
            "tick_reduction": m.tick_reduction,
            "samples": m.samples,
            "wall_seconds": m.wall_seconds,
            "mode": "parallel" if self._parallel is not None else "serial",
            "replaying": self.replaying,
        }
        if self.tracer is not None:
            status["trace"] = {"driver": self.tracer.health()}
        engine = self._parallel
        if engine is not None:
            ipc = engine.ipc
            status["parallel"] = {
                "workers": ipc.workers,
                "barrier_wait_s": {
                    str(shard): wait
                    for shard, wait in sorted(ipc.barrier_wait_s.items())
                },
                "barrier_wait_skew": ipc.barrier_wait_skew,
                "barrier_frame_wait_s": {
                    "p50": ipc.frame_wait_quantile(0.5),
                    "p90": ipc.frame_wait_quantile(0.9),
                    "p99": ipc.frame_wait_quantile(0.99),
                },
                "restarts": list(engine.restart_log),
                "max_restarts": engine.max_restarts,
                "checkpoint_seq": engine.checkpoint_seq,
            }
        return status

    def trace_health(self) -> Dict[str, dict]:
        """Per-process tracer drop/spill accounting, synced to metrics.

        In parallel mode this posts one ``state`` barrier to collect the
        worker counters — call it at export/close time, not from the
        ops server thread (which must stay read-only).
        """
        if self.tracer is None:
            return {}
        from repro.obs.ops import sync_trace_counters

        health = {self.tracer.track: self.tracer.health()}
        if self._parallel is not None:
            health.update(self._parallel.trace_health())
        sync_trace_counters(self.metrics.registry, health)
        return health

    def enable_resilience(
        self,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: float = 300.0,
        barrier_timeout_s: float = 600.0,
        max_restarts: int = 2,
        supervise: bool = True,
    ):
        """Turn on the self-healing machinery for the parallel engine.

        Must be called before the first parallel run (the engine reads
        the config at startup). With ``checkpoint_dir`` set, every shard
        serializes its recoverable state into versioned snapshots every
        ``checkpoint_every`` sim-seconds and the driver writes a matching
        manifest; ``run(resume=True)`` restarts from the latest one.
        With ``supervise`` on, a worker that dies or misses the
        ``barrier_timeout_s`` reply deadline is killed and respawned from
        the latest snapshot (up to ``max_restarts`` times per shard) and
        replayed forward bit-identically. See ``docs/resilience.md``.
        """
        from repro.sim.resilience import ResilienceConfig

        if self._parallel is not None:
            raise SimulationError(
                "enable resilience before the first parallel run: the"
                " engine wires its supervisor and checkpoint clock at"
                " startup"
            )
        self.resilience = ResilienceConfig(
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            barrier_timeout_s=barrier_timeout_s,
            max_restarts=max_restarts,
            supervise=supervise,
        )
        return self.resilience

    @property
    def replaying(self) -> bool:
        """True while a resumed run is still skipping pre-checkpoint windows."""
        return self._replay_until is not None

    def checkpoint_safepoint(self) -> None:
        """Offer a checkpoint at a strategy-loop safepoint.

        Strategies that register :attr:`checkpoint_extras` call this at
        the top of each campaign iteration — the only instants where
        their driver-side state is reconstructable — and the engine
        snapshots there if a ``checkpoint_every`` boundary has passed.
        No-op while serial, while resilience is off, or while a resumed
        run is still replaying toward the checkpoint time.
        """
        if self._parallel is not None and self._replay_until is None:
            self._parallel.checkpoint_if_due()

    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time.

        In parallel mode the driver-side clock is authoritative (the
        local host kernels stay frozen at the fork point — all fleet
        state lives in the shard workers).
        """
        if self._parallel is not None:
            return self._parallel.clock.now
        return self.cloud.clock.now

    def server_wall_watts(self, index: int) -> float:
        """Ground-truth wall power of one server."""
        if self._parallel is not None:
            return self._parallel.server_watts()[index]
        return self.power_cache.watts(self.cloud.hosts[index].kernel)

    def aggregate_wall_watts(self) -> float:
        """Ground-truth wall power of the whole fleet."""
        if self._parallel is not None:
            watts = self._parallel.server_watts()
            return sum(watts[i] for i in range(len(self.cloud.hosts)))
        return sum(self.server_wall_watts(i) for i in range(len(self.cloud.hosts)))

    def _dark_indices(self) -> set:
        """Servers currently without power (breaker opened, or crashed)."""
        dark = set()
        for rack in self.racks:
            if rack.breaker.tripped:
                dark.update(self._kernel_index[id(k)] for k in rack.kernels)
        if self.fault_injector is not None:
            dark.update(self.fault_injector.crashed_now())
        return dark

    def _crashed_kernel_ids(self) -> frozenset:
        """``id(kernel)`` of crashed servers (they draw no rack power)."""
        if self.fault_injector is None:
            return frozenset()
        hosts = self.cloud.hosts
        return frozenset(
            id(hosts[i].kernel) for i in self.fault_injector.crashed_now()
        )

    def enable_subsystem_timings(self) -> SubsystemTimings:
        """Profile wall time per kernel subsystem across the whole fleet."""
        timings = self.metrics.subsystem_timings or SubsystemTimings(
            registry=self.metrics.registry
        )
        self.metrics.subsystem_timings = timings
        if self.host_engine is not None:
            # a timed kernel cannot stay columnar (the column sweep has no
            # per-subsystem spans), and a cold one would shrug off the
            # per-host assignment below — materialize everything first
            self.host_engine.materialize_all()
        for host in self.cloud.hosts:
            host.kernel.timings = timings
        return timings

    def set_sample_interval(self, interval_s: float) -> None:
        """Change the sampling cadence, re-anchored at the current time.

        The next sample lands ``interval_s`` seconds from now; subsequent
        samples stay on exact multiples of the new interval from here.
        """
        if interval_s <= 0:
            raise SimulationError(f"sample interval must be positive: {interval_s}")
        self.sample_interval_s = interval_s
        self._sample_origin = self.now
        self._sample_count = 1

    @property
    def next_sample_time(self) -> float:
        """Absolute virtual time of the next scheduled trace sample."""
        return self._sample_origin + self._sample_count * self.sample_interval_s

    def _coalesce_horizon(self, dark: set) -> float:
        """The nearest virtual time a coalesced tick must not step across."""
        horizon = self.next_sample_time
        if self.population is not None:
            horizon = min(horizon, self.population.next_event_time(self.now, dark))
        else:
            k = self.tenants_per_host
            for t, tenant in enumerate(self.tenants):
                if (t // k) not in dark:
                    horizon = min(horizon, tenant.next_event_time(self.now))
        he = self.host_engine
        for i, host in enumerate(self.cloud.hosts):
            # cold hosts hold only single-phase unbounded workloads (the
            # eligibility contract), so their phase horizon is +inf
            if i not in dark and (he is None or not he.is_cold(i)):
                horizon = min(
                    horizon, self.now + host.kernel.next_phase_boundary_s()
                )
        for source in self.horizon_sources:
            horizon = min(horizon, source(self.now))
        return horizon

    def _coalesce_fingerprint(self, dark: set) -> tuple:
        """Workload-set fingerprint: changes on any spawn/kill/exec/trip.

        In columnar mode each host's entry also folds in the population's
        aggregate demand column for that host (O(1) per host), so the
        plan frames carry the array-side fingerprint alongside the
        kernel-side one; both move on exactly the same events, and the
        parallel shards compute the identical formula.
        """
        pop = self.population
        he = self.host_engine
        if pop is not None and he is not None:
            # cold hosts answer from the engine's fingerprint column —
            # the same 0.0-seeded fold the kernel would compute, updated
            # on churn instead of re-derived per tick
            demands = tuple(
                0.0
                if i in dark
                else (
                    he.fingerprint(i)
                    if he.is_cold(i)
                    else host.kernel.demand_fingerprint()
                )
                + pop.host_demand(i)
                for i, host in enumerate(self.cloud.hosts)
            )
        elif pop is not None:
            demands = tuple(
                0.0
                if i in dark
                else host.kernel.demand_fingerprint() + pop.host_demand(i)
                for i, host in enumerate(self.cloud.hosts)
            )
        else:
            demands = tuple(
                0.0 if i in dark else host.kernel.demand_fingerprint()
                for i, host in enumerate(self.cloud.hosts)
            )
        return (demands, frozenset(dark))

    def _breakers_safe(self) -> bool:
        """Whether every rack is far enough from its breaker's trip knee.

        Above the knee the thermal trip integral is live and trip timing
        must be resolved at base-``dt`` resolution; at or below it a
        phase-stable (constant-power) window cannot trip, so skipping is
        legal. Tripped racks are dark and cannot get darker.
        """
        crashed = self._crashed_kernel_ids()
        for rack in self.racks:
            if rack.breaker.tripped:
                continue
            ratio = rack.wall_power(crashed) / rack.breaker.rated_watts
            if ratio > self.breaker_knee_ratio:
                return False
        return True

    def run(
        self,
        seconds: float,
        dt: float = 1.0,
        on_tick: Optional[Callable[["DatacenterSimulation"], None]] = None,
        coalesce: bool = False,
        parallel: int = 0,
        resume: bool = False,
        control_plane: str = "shm",
    ) -> None:
        """Advance the fleet, tenants, breakers, and traces.

        A tripped rack breaker has consequences: its servers go dark —
        they stop executing (no kernel ticks) and draw no wall power —
        which is exactly the outage the power attack aims to cause
        ("forced shutdowns for servers on the same rack", Section II-C).

        With ``coalesce=True``, phase-stable stretches (no tenant
        decision, no phase boundary, no pending sample, every breaker
        below its knee) are advanced in one large tick — see
        :mod:`repro.sim.fastforward` for the safety invariants.
        ``on_tick`` then fires once per executed tick, not per base dt.

        With a fault injector installed (:meth:`install_faults`), due
        fault events apply before each tick is planned, fault boundaries
        bound coalesced steps (they are barrier events), and crashed
        servers go dark until their scheduled reboot.

        With ``parallel=N`` the fleet executes rack-sharded across ``N``
        spawn worker processes, lock-stepped at the same barriers and
        bit-identical to the serial path on equal seeds — see
        :mod:`repro.sim.parallel`. The first parallel run must start
        from a fresh simulation; once parallel, later runs inherit the
        parallel engine (callers like attack strategies just call
        ``run()`` and stay on the worker-held fleet).

        With ``resume=True`` on the *first* parallel run (requires
        :meth:`enable_resilience` with a ``checkpoint_dir``), the engine
        restores the fleet from the latest on-disk checkpoint instead of
        building fresh, and subsequent ``run`` calls replay through the
        already-covered caller windows as no-ops until virtual time
        passes the checkpoint — so campaign code reissues the exact same
        call sequence and the completed trace is bit-identical to an
        uninterrupted run. See ``docs/resilience.md``.

        ``control_plane`` selects the parallel barrier transport:
        ``"shm"`` (default) runs steady-state control frames over the
        shared-memory slot plane with batched plan epochs, ``"pipe"``
        is the classic pickled-pipe protocol — both bit-identical, see
        ``docs/parallel.md``. Only read when the parallel engine is
        first created.
        """
        if seconds <= 0:
            raise SimulationError(f"run needs positive duration: {seconds}")
        if parallel or self._parallel is not None:
            if on_tick is not None:
                raise SimulationError(
                    "on_tick callbacks cannot observe worker-held state;"
                    " the parallel driver does not support them"
                )
            if self._parallel is None:
                from repro.sim.parallel import ParallelFleetEngine

                if resume:
                    cfg = self.resilience
                    if cfg is None or cfg.checkpoint_dir is None:
                        raise SimulationError(
                            "resume requires enable_resilience() with a"
                            " checkpoint_dir to restore from"
                        )
                    self._parallel = ParallelFleetEngine(
                        self,
                        workers=parallel,
                        resume_dir=cfg.checkpoint_dir,
                        control_plane=control_plane,
                    )
                    self._replay_until = self._parallel.clock.now
                    self._replay_cursor = self._start_time
                else:
                    self._parallel = ParallelFleetEngine(
                        self, workers=parallel, control_plane=control_plane
                    )
            elif resume:
                raise SimulationError(
                    "resume must be requested on the first parallel run;"
                    " the engine is already live"
                )
            if self._replay_until is not None:
                covered = self._replay_cursor
                if covered + seconds <= self._replay_until + 1e-9:
                    # window fully executed before the checkpoint: no-op
                    self._replay_cursor = covered + seconds
                    if self._replay_cursor >= self._replay_until - 1e-9:
                        self._replay_until = None
                        self._replay_cursor = None
                    return
                # window straddles the checkpoint: run only the tail,
                # reporting the caller's full window in the trace span
                # and skipping the run-start barrier the golden run
                # never had mid-window
                remainder = covered + seconds - self._replay_until
                self._replay_until = None
                self._replay_cursor = None
                self._parallel.run(
                    remainder,
                    dt=dt,
                    coalesce=coalesce,
                    span_t0=covered,
                    span_seconds=seconds,
                    skip_begin=True,
                )
                return
            self._parallel.run(seconds, dt=dt, coalesce=coalesce)
            return
        if resume:
            raise SimulationError(
                "resume requires a parallel run (pass parallel=N)"
            )
        if self.resilience is not None and self.resilience.checkpoint_dir:
            raise SimulationError(
                "checkpointing requires the parallel engine; serial runs"
                " do not snapshot"
            )
        engine = self.fastforward
        injector = self.fault_injector
        tracer = self.tracer
        ops = self._ops
        trace_on = tracer is not None and tracer.enabled
        if trace_on:
            run_t0, run_w0 = self.now, perf_counter()
        with WallTimer(self.metrics):
            if injector is not None and injector.advance(self.now):
                engine.stability.reset()
            self._catch_up_samples()
            remaining = seconds
            while remaining > 1e-9:
                if trace_on:
                    tick_t0, tick_w0 = self.now, perf_counter()
                dark = self._dark_indices()
                step = min(dt, remaining)
                if self.population is not None:
                    self.population.step(self.now, step, dark_hosts=dark)
                else:
                    k = self.tenants_per_host
                    for t, tenant in enumerate(self.tenants):
                        if (t // k) not in dark:
                            tenant.step(self.now, step)
                if coalesce:
                    stable = engine.stability.observe(
                        self._coalesce_fingerprint(dark)
                    ) and self._breakers_safe()
                    step = engine.plan_step(
                        now=self.now,
                        remaining=remaining,
                        base_dt=dt,
                        horizon=self._coalesce_horizon(dark),
                        stable=stable,
                    )
                barrier_t0 = self.now
                self.cloud.clock.advance(step)
                if self.host_engine is not None:
                    self.host_engine.tick_all(step, dark, barrier_t0)
                else:
                    for i, host in enumerate(self.cloud.hosts):
                        if i not in dark:
                            host.kernel.tick(step)
                crashed = self._crashed_kernel_ids()
                for rack in self.racks:
                    rack.observe(step, self.now, crashed)
                if injector is not None and injector.advance(self.now):
                    engine.stability.reset()
                self._catch_up_samples()
                self.metrics.record_tick(step, dt)
                if ops is not None:
                    ops.on_tick(self.now)
                if on_tick is not None:
                    on_tick(self)
                if trace_on:
                    tracer.add_span(
                        "fleet.tick",
                        tick_t0,
                        self.now,
                        perf_counter() - tick_w0,
                        step=step,
                    )
                remaining -= step
        if trace_on:
            tracer.add_span(
                "fleet.run",
                run_t0,
                self.now,
                perf_counter() - run_w0,
                seconds=seconds,
                dt=dt,
                coalesce=coalesce,
            )

    def _catch_up_samples(self) -> None:
        """Record every sample that is due at or before the current time.

        Sample times are anchored on exact interval multiples (not on the
        possibly-overshot ``now``), so a ``dt`` that does not divide the
        interval still yields the nominal cadence, the t=0 baseline is
        recorded, and gaps (e.g. the clock advanced outside ``run``) are
        caught up rather than silently shifting the grid.
        """
        while self.next_sample_time <= self.now + 1e-9:
            self._sample(at=self.next_sample_time)
            self._sample_count += 1

    def _sample(self, at: Optional[float] = None) -> None:
        when = self.now if at is None else at
        injector = self.fault_injector
        crashed: frozenset = frozenset()
        if injector is not None:
            crashed = injector.crashed_now()
            last = self.aggregate_trace.times[-1] if self.aggregate_trace.times else 0.0
            # clock jitter displaces the *recorded* timestamp only; the
            # sampling grid itself stays anchored on interval multiples
            when = injector.jittered_time(when, self.sample_interval_s, floor=last)
        dark = self._dark_indices()
        total = 0.0
        for i in range(len(self.cloud.hosts)):
            if i in crashed:
                # a down machine leaves a hole in its trace, not a zero
                self.server_traces[i].note_gap(when)
                continue
            watts = 0.0 if i in dark else self.server_wall_watts(i)
            self.server_traces[i].append(when, watts)
            total += watts
        self.aggregate_trace.append(when, total)
        self.metrics.samples += 1

    # ------------------------------------------------------------------
    # parallel-aware instance plumbing (attack strategies go through
    # these so the same code drives the serial and the sharded fleet)

    def exec_in_instance(self, instance, name: str, workload_factory, *args) -> None:
        """Start a workload inside an instance's container.

        Serial: executes immediately. Parallel: the op is queued to the
        owning shard and applied at that shard's next barrier *before*
        any tick executes — the same ordering as the serial
        call-then-``run()`` sequence. ``workload_factory`` must be
        picklable (a module-level callable); the workload object itself
        is built inside the worker.
        """
        if self._parallel is not None:
            self._parallel.queue_exec(
                instance.instance_id, name, workload_factory, args
            )
        else:
            instance.container.exec(name, workload=workload_factory(*args))

    def reap_instance(self, instance) -> None:
        """Reap an instance's finished tasks (parallel-aware)."""
        if self._parallel is not None:
            self._parallel.queue_reap(instance.instance_id)
        else:
            instance.container.reap_finished()

    def tenant_bill(self, tenant: str) -> float:
        """Utilization-based bill for a tenant (parallel-aware).

        The parallel branch replays the exact float arithmetic of
        :meth:`repro.runtime.cloud.ContainerCloud.bill` over worker-held
        cpuacct meters, in the same instance order, so bills are
        bit-identical across drivers.
        """
        if self._parallel is None:
            return self.cloud.bill(tenant)
        meters = self._parallel.billing_meters()
        cpu_hours = sum(
            (meters[i.instance_id][0] - meters[i.instance_id][1]) / 1e9 / 3600.0
            for i in self.cloud.instances_of(tenant)
        )
        return cpu_hours * self.profile.price_per_cpu_hour

    def instances_cpu_seconds(self, instances) -> float:
        """Summed billed CPU seconds over ``instances`` (parallel-aware)."""
        if self._parallel is None:
            return sum(i.billed_cpu_seconds for i in instances)
        meters = self._parallel.billing_meters()
        return sum(
            (meters[i.instance_id][0] - meters[i.instance_id][1]) / 1e9
            for i in instances
        )

    # ------------------------------------------------------------------

    def any_breaker_tripped(self) -> bool:
        """Whether any rack breaker has opened."""
        if self._parallel is not None:
            return any(b.tripped for b in self._parallel.breaker_states())
        return any(rack.breaker.tripped for rack in self.racks)

    def fault_report(self) -> Dict[str, int]:
        """Injected-fault and degradation counters (empty without faults)."""
        if self.fault_injector is None:
            return {}
        if self._parallel is not None:
            report = self._parallel.fault_stats()
        else:
            report = self.fault_injector.stats.as_dict()
        report["trace-gap-samples"] = sum(
            len(trace.gaps) for trace in self.server_traces.values()
        )
        return report

    def trip_log(self) -> List[str]:
        """Human-readable breaker events."""
        if self._parallel is not None:
            return [
                f"{b.name} tripped at t={b.tripped_at:.0f}s"
                for b in self._parallel.breaker_states()
                if b.tripped
            ]
        return [
            f"{rack.breaker.name} tripped at t={rack.breaker.tripped_at:.0f}s"
            for rack in self.racks
            if rack.breaker.tripped
        ]

    def close(self) -> None:
        """Shut down the ops plane, spill segments, and parallel workers.

        The ops stream gets a final record at the current sim time and
        the pull server (if any) stops; driver-side ring accounting is
        mirrored into the registry so the last snapshot carries it.
        """
        if self.tracer is not None:
            from repro.obs.ops import sync_trace_counters

            sync_trace_counters(
                self.metrics.registry, {self.tracer.track: self.tracer.health()}
            )
        if self._ops is not None:
            self._ops.close(self.now)
            self._ops.shutdown()
        if self.tracer is not None:
            self.tracer.close_spill()
        if self._parallel is not None:
            self._parallel.close()
