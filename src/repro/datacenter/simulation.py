"""The fleet simulation used by the Figure 2–4 experiments.

Wires a :class:`repro.runtime.cloud.ContainerCloud` into racks with
breakers, attaches a benign tenant driver per host, and records wall-power
traces at a configurable sampling interval — the facility-side ground
truth against which the attacker's RAPL-derived view is compared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.datacenter.breaker import CircuitBreaker
from repro.datacenter.tenants import DiurnalProfile, DiurnalTenantDriver
from repro.datacenter.topology import Rack, ServerPowerConfig, wall_power_watts
from repro.errors import SimulationError
from repro.runtime.cloud import ContainerCloud, PROVIDER_PROFILES, ProviderProfile


@dataclass
class PowerTrace:
    """A sampled power time series with averaging helpers."""

    times: List[float] = field(default_factory=list)
    watts: List[float] = field(default_factory=list)

    def append(self, t: float, w: float) -> None:
        """Record one sample (timestamps must be nondecreasing)."""
        if self.times and t < self.times[-1]:
            raise SimulationError(f"trace timestamps must not decrease: {t}")
        self.times.append(t)
        self.watts.append(w)

    def __len__(self) -> int:
        return len(self.times)

    @property
    def peak(self) -> float:
        """Maximum sampled power."""
        return max(self.watts)

    @property
    def trough(self) -> float:
        """Minimum sampled power."""
        return min(self.watts)

    @property
    def mean(self) -> float:
        """Mean sampled power."""
        return sum(self.watts) / len(self.watts)

    @property
    def swing_fraction(self) -> float:
        """(peak − trough)/trough — Figure 2 reports 34.72%."""
        return (self.peak - self.trough) / self.trough

    def averaged(self, window_s: float) -> "PowerTrace":
        """Resample by averaging fixed windows (Figure 2's 30 s view)."""
        if window_s <= 0:
            raise SimulationError(f"window must be positive: {window_s}")
        if not self.times:
            return PowerTrace()
        out = PowerTrace()
        start = self.times[0]
        bucket: List[float] = []
        bucket_index = 0
        for t, w in zip(self.times, self.watts):
            index = int((t - start) // window_s)
            if index != bucket_index and bucket:
                out.append(start + bucket_index * window_s, sum(bucket) / len(bucket))
                bucket = []
                bucket_index = index
            bucket.append(w)
        if bucket:
            out.append(start + bucket_index * window_s, sum(bucket) / len(bucket))
        return out

    def window(self, t0: float, t1: float) -> "PowerTrace":
        """The sub-trace with t0 <= t < t1."""
        out = PowerTrace()
        for t, w in zip(self.times, self.watts):
            if t0 <= t < t1:
                out.append(t, w)
        return out


class DatacenterSimulation:
    """A cloud fleet + racks + breakers + benign tenants + tracing."""

    def __init__(
        self,
        profile: Optional[ProviderProfile] = None,
        servers: int = 8,
        rack_size: int = 8,
        breaker_rated_watts: float = 1300.0,
        seed: int = 0,
        tenant_profile: Optional[DiurnalProfile] = None,
        power_config: Optional[ServerPowerConfig] = None,
        sample_interval_s: float = 1.0,
    ):
        if servers < 1 or rack_size < 1:
            raise SimulationError("need at least one server and rack slot")
        self.profile = profile or PROVIDER_PROFILES["CC1"]
        self.cloud = ContainerCloud(self.profile, seed=seed, servers=servers)
        self.power_config = power_config or ServerPowerConfig()
        self.sample_interval_s = sample_interval_s

        self.racks: List[Rack] = []
        kernels = [h.kernel for h in self.cloud.hosts]
        for start in range(0, servers, rack_size):
            group = kernels[start : start + rack_size]
            rack = Rack(
                name=f"rack-{start // rack_size}",
                kernels=group,
                breaker=CircuitBreaker(
                    name=f"breaker-{start // rack_size}",
                    rated_watts=breaker_rated_watts * len(group) / rack_size,
                ),
                power_config=self.power_config,
            )
            self.racks.append(rack)

        self.tenants: List[DiurnalTenantDriver] = [
            DiurnalTenantDriver(
                kernel=host.kernel,
                rng=self.cloud.rng.fork(f"tenant-{i}"),
                profile=tenant_profile,
                engine=host.engine,
            )
            for i, host in enumerate(self.cloud.hosts)
        ]

        self.aggregate_trace = PowerTrace()
        self.server_traces: Dict[int, PowerTrace] = {
            i: PowerTrace() for i in range(servers)
        }
        self._next_sample = 0.0

    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.cloud.clock.now

    def server_wall_watts(self, index: int) -> float:
        """Ground-truth wall power of one server."""
        return wall_power_watts(self.cloud.hosts[index].kernel, self.power_config)

    def aggregate_wall_watts(self) -> float:
        """Ground-truth wall power of the whole fleet."""
        return sum(self.server_wall_watts(i) for i in range(len(self.cloud.hosts)))

    def _dark_indices(self) -> set:
        """Servers currently without power (their rack breaker opened)."""
        index_of = {id(h.kernel): i for i, h in enumerate(self.cloud.hosts)}
        dark = set()
        for rack in self.racks:
            if rack.breaker.tripped:
                dark.update(index_of[id(k)] for k in rack.kernels)
        return dark

    def run(
        self,
        seconds: float,
        dt: float = 1.0,
        on_tick: Optional[Callable[["DatacenterSimulation"], None]] = None,
    ) -> None:
        """Advance the fleet, tenants, breakers, and traces.

        A tripped rack breaker has consequences: its servers go dark —
        they stop executing (no kernel ticks) and draw no wall power —
        which is exactly the outage the power attack aims to cause
        ("forced shutdowns for servers on the same rack", Section II-C).
        """
        if seconds <= 0:
            raise SimulationError(f"run needs positive duration: {seconds}")
        remaining = seconds
        while remaining > 1e-9:
            step = min(dt, remaining)
            dark = self._dark_indices()
            for i, tenant in enumerate(self.tenants):
                if i not in dark:
                    tenant.step(self.now, step)
            self.cloud.clock.advance(step)
            for i, host in enumerate(self.cloud.hosts):
                if i not in dark:
                    host.kernel.tick(step)
            for rack in self.racks:
                rack.observe(step, self.now)
            if self.now >= self._next_sample:
                self._sample()
                self._next_sample = self.now + self.sample_interval_s
            if on_tick is not None:
                on_tick(self)
            remaining -= step

    def _sample(self) -> None:
        dark = self._dark_indices()
        total = 0.0
        for i in range(len(self.cloud.hosts)):
            watts = 0.0 if i in dark else self.server_wall_watts(i)
            self.server_traces[i].append(self.now, watts)
            total += watts
        self.aggregate_trace.append(self.now, total)

    # ------------------------------------------------------------------

    def any_breaker_tripped(self) -> bool:
        """Whether any rack breaker has opened."""
        return any(rack.breaker.tripped for rack in self.racks)

    def trip_log(self) -> List[str]:
        """Human-readable breaker events."""
        return [
            f"{rack.breaker.name} tripped at t={rack.breaker.tripped_at:.0f}s"
            for rack in self.racks
            if rack.breaker.tripped
        ]
