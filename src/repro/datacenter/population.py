"""Columnar tenant population: the demand plane as numpy arrays.

The north star is fleets with "millions of users", but one
:class:`~repro.datacenter.tenants.DiurnalTenantDriver` per tenant caps a
shard at thousands: a million-tenant tick is a million Python method
calls before the first kernel subsystem runs.
:class:`TenantPopulation` stores the *entire* demand plane of a shard in
per-stream columns — keyed-RNG stream keys, diurnal phase constants
(``cos``/``sin`` of the per-tenant phase shift), per-day demand factors,
burst deadlines, adjustment cursors, worker counts, and the OOM-pruned
dirty mask — so one tick over 10⁵–10⁶ tenants is a handful of vector
ops, and per-object work is spent only on the (rare) tenants whose
worker set actually changes.

Bit-identity contract
---------------------
The population is not an approximation of the scalar driver; it *is* the
driver, evaluated columnwise:

* every stochastic decision is a stateless keyed draw
  (``burst@<adjust#>``, ``day-factor@<day>``, noise keyed by grid index,
  worker kinds by spawn ordinal), with scalar and vector evaluation
  guaranteed bit-identical by :mod:`repro.sim.rng`;
* adjustments anchor to the same absolute
  :class:`~repro.sim.fastforward.DecisionGrid`, and missed boundaries are
  replayed identically;
* the float expressions (raised-cosine shape via the angle-addition
  formula, noise multiplier, core cap) are written with the same
  operation order as ``DiurnalTenantDriver.target_cores``, so IEEE-754
  elementwise semantics make the results equal bit for bit;
* workers are spawned/killed in global tenant-index order, exactly the
  order a serial loop over per-object drivers uses.

``tests/datacenter/test_population.py`` pins all of this: power traces
and worker counts from a fleet of per-object drivers and from the
columnar engine are byte-identical at equal seeds, serially and under
the rack-sharded parallel engine.

OOM pruning
-----------
Fault-injected OOM kills reap tenant workers behind the population's
back. The fault injector reports each victim through
:meth:`TenantPopulation.note_task_killed`; the population marks only
that tenant dirty and re-scans just the dirty rows at their next
adjustment — the scalar driver's "filter the whole worker list every
adjustment" at columnar scale would be O(fleet) per boundary.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.kernel.process import Task
from repro.obs.registry import MetricRegistry
from repro.sim.fastforward import DecisionGrid
from repro.sim.rng import (
    DeterministicRNG,
    keyed_gauss,
    keyed_gauss_array,
    keyed_u01,
    keyed_u01_array,
    keyed_uniform,
    keyed_uniform_array,
    stream_key,
)

from repro.datacenter.tenants import (
    CORE_CAP_FRACTION,
    SECONDS_PER_DAY,
    DiurnalProfile,
    _batch_workload,
    _web_workload,
)


def container_name_for(tenant_ordinal: int, tenants_per_host: int) -> str:
    """Container naming shared by both tenant engines.

    One tenant per host keeps the historical ``benign-tenant`` name;
    multiplexed tenants get a per-host ordinal suffix (container names
    must be unique within an engine).
    """
    if tenants_per_host == 1:
        return "benign-tenant"
    return f"benign-tenant-{tenant_ordinal}"


class TenantView:
    """Read-mostly per-object window onto one tenant's columns.

    Exposes the :class:`~repro.datacenter.tenants.DiurnalTenantDriver`
    query surface (``worker_count``, ``target_cores``,
    ``next_event_time``, ``burst_until``) backed by the population
    arrays. ``target_cores`` evaluates the same keyed draws the vector
    path uses, so probing a view never perturbs the population.
    """

    __slots__ = ("_pop", "_slot")

    def __init__(self, pop: "TenantPopulation", slot: int):
        self._pop = pop
        self._slot = slot

    @property
    def tenant_id(self) -> int:
        return int(self._pop.tenant_ids[self._slot])

    @property
    def worker_count(self) -> int:
        return int(self._pop.workers[self._slot])

    @property
    def burst_until(self) -> float:
        return float(self._pop.burst_until[self._slot])

    def target_cores(self, now: float) -> float:
        """The demand target at ``now`` (bit-equal to the vector path)."""
        pop, s = self._pop, self._slot
        p = pop.profile
        day = int(now // SECONDS_PER_DAY)
        lo, hi = p.day_factor_range
        factor = keyed_uniform(int(pop._day_keys[s]), day, lo, hi)
        hour = (now % SECONDS_PER_DAY) / 3600.0
        angle = 2 * math.pi * (hour - p.peak_hour) / 24.0
        shape = 0.5 * (
            1.0
            + (
                math.cos(angle) * float(pop._cos_phase[s])
                - math.sin(angle) * float(pop._sin_phase[s])
            )
        )
        target = p.base_cores + p.peak_cores * shape * factor
        if now < pop.burst_until[s]:
            target += p.burst_cores
        noise = keyed_gauss(int(pop._noise_keys[s]), pop.grid.index_at(now), p.noise)
        target *= max(0.0, 1.0 + noise)
        return min(target, float(pop._core_cap[s]))

    def next_event_time(self, now: float) -> float:
        """Strictly-future next decision time for this tenant."""
        pop, s = self._pop, self._slot
        pending = int(pop.next_k[s])
        return pop.grid.next_boundary(now, pending if pending >= 0 else None)


class TenantPopulation:
    """All tenants of one shard (or one serial fleet) as columns.

    Build with :meth:`for_hosts`. Tenants are laid out host-major: host
    slot ``h`` owns rows ``[h*K, (h+1)*K)`` where ``K`` is
    ``tenants_per_host``; the global tenant id of row ``s`` is
    ``host_label*K + (s % K)``, and its RNG tree is
    ``root.fork(f"tenant-{id}")`` — the same derivation the per-object
    construction uses, so a shard holding hosts ``[32, 40)`` draws
    exactly what the whole-fleet serial population draws for those rows.

    A host entry of ``None`` makes its tenants *demand-only*: worker
    counts are tracked virtually with nothing materialized (pure array
    math end to end), which is what the throughput benches and the
    burst-statistics tests run on.
    """

    def __init__(
        self,
        *,
        profile: Optional[DiurnalProfile] = None,
        adjust_interval_s: float = 60.0,
        registry: Optional[MetricRegistry] = None,
    ):
        if adjust_interval_s <= 0:
            raise SimulationError(
                f"adjust interval must be positive: {adjust_interval_s}"
            )
        self.profile = profile or DiurnalProfile()
        self.adjust_interval_s = adjust_interval_s
        self.grid = DecisionGrid(adjust_interval_s)
        self.registry = registry if registry is not None else MetricRegistry()
        r = self.registry
        self._g_tenants = r.gauge("population.tenants", "tenant rows in the columns")
        self._c_steps = r.counter("population.steps", "population step() calls")
        self._c_ticks = r.counter(
            "population.tenant_ticks", "tenant-ticks evaluated (tenants x steps)"
        )
        self._c_adjust = r.counter(
            "population.adjustments", "tenant adjustment boundaries processed"
        )
        self._c_bursts = r.counter("population.bursts_started", "bursts started")
        self._c_spawns = r.counter("population.spawns", "benign workers spawned")
        self._c_kills = r.counter("population.kills", "benign workers scaled down")
        self._c_pruned = r.counter(
            "population.oom_pruned", "dead workers dropped via the dirty mask"
        )
        self.n = 0
        self.k_per_host = 1
        self._materialized = False
        self._kernels: List[object] = []
        self._engines: List[object] = []
        self._host_labels: List[int] = []
        self._label_to_host: Dict[int, int] = {}
        self._containers: List[object] = []
        self._tasks: List[List[Task]] = []
        #: id(task) -> (row, demand at spawn); the OOM seam keys on this
        self._task_info: Dict[int, Tuple[int, float]] = {}
        self._dirty_any = False
        self._day_cache: Optional[int] = None
        #: columnar host engine (``repro.kernel.columnar``); when bound,
        #: rows on cold hosts reconcile column-to-column — spawns/kills
        #: become deferred ops and the host's aggregate-demand column
        #: moves without touching any per-host Python dict
        self.host_engine = None

    # ------------------------------------------------------------------
    # checkpoint snapshots

    # ``_task_info`` is keyed on ``id(task)``, which does not survive a
    # pickle round trip: snapshots encode it positionally against the
    # ``_tasks`` rows (every live task is in both structures — kills pop
    # the pair together and prunes only drop already-popped tasks) and
    # restore rebuilds the id-keyed dict from the unpickled task objects.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_task_info"] = [
            [self._task_info.get(id(task), (0, None))[1] for task in row]
            for row in self._tasks
        ]
        return state

    def __setstate__(self, state: dict) -> None:
        encoded = state.pop("_task_info")
        self.__dict__.update(state)
        self._task_info = {}
        for s, (row, demands) in enumerate(zip(self._tasks, encoded)):
            for task, demand in zip(row, demands):
                if demand is not None:
                    self._task_info[id(task)] = (s, demand)

    # ------------------------------------------------------------------
    # construction

    @classmethod
    def for_hosts(
        cls,
        root_rng: DeterministicRNG,
        kernels: Sequence[object],
        engines: Sequence[object] = (),
        *,
        host_labels: Optional[Sequence[int]] = None,
        tenants_per_host: int = 1,
        profile: Optional[DiurnalProfile] = None,
        adjust_interval_s: float = 60.0,
        core_cap: Optional[float] = None,
        registry: Optional[MetricRegistry] = None,
    ) -> "TenantPopulation":
        """Build the columns for ``len(kernels) * tenants_per_host`` rows."""
        if tenants_per_host < 1:
            raise SimulationError(
                f"tenants_per_host must be >= 1: {tenants_per_host}"
            )
        pop = cls(
            profile=profile, adjust_interval_s=adjust_interval_s, registry=registry
        )
        hosts = len(kernels)
        pop._kernels = list(kernels)
        pop._engines = list(engines) if engines else [None] * hosts
        if len(pop._engines) != hosts:
            raise SimulationError("engines must match kernels 1:1")
        pop._host_labels = (
            list(host_labels) if host_labels is not None else list(range(hosts))
        )
        if len(pop._host_labels) != hosts:
            raise SimulationError("host_labels must match kernels 1:1")
        pop._label_to_host = {label: h for h, label in enumerate(pop._host_labels)}
        k = tenants_per_host
        n = hosts * k
        pop.n = n
        pop.k_per_host = k
        pop._materialized = any(kern is not None for kern in pop._kernels)
        pop._g_tenants.value = n

        pop.tenant_ids = np.empty(n, dtype=np.int64)
        pop._burst_keys = np.empty(n, dtype=np.uint64)
        pop._day_keys = np.empty(n, dtype=np.uint64)
        pop._noise_keys = np.empty(n, dtype=np.uint64)
        pop._kind_keys = np.empty(n, dtype=np.uint64)
        pop._cos_phase = np.empty(n, dtype=np.float64)
        pop._sin_phase = np.empty(n, dtype=np.float64)
        pop._core_cap = np.empty(n, dtype=np.float64)
        pop.burst_until = np.full(n, -1.0, dtype=np.float64)
        pop.next_k = np.full(n, -1, dtype=np.int64)
        pop.workers = np.zeros(n, dtype=np.int64)
        pop._spawn_seq = np.zeros(n, dtype=np.int64)
        pop._dirty = np.zeros(n, dtype=bool)
        pop._day_factor = np.ones(n, dtype=np.float64)
        pop._host_demand = np.zeros(hosts, dtype=np.float64)
        pop._containers = [None] * n
        pop._tasks = [[] for _ in range(n)]

        for h, (label, kernel) in enumerate(zip(pop._host_labels, pop._kernels)):
            if kernel is None:
                cap = math.inf if core_cap is None else core_cap
            else:
                cap = kernel.config.total_cores * CORE_CAP_FRACTION
            for j in range(k):
                s = h * k + j
                tenant_id = label * k + j
                seed = root_rng.fork(f"tenant-{tenant_id}").seed
                pop.tenant_ids[s] = tenant_id
                pop._burst_keys[s] = stream_key(seed, "burst")
                pop._day_keys[s] = stream_key(seed, "day-factor")
                pop._noise_keys[s] = stream_key(seed, "demand-noise")
                pop._kind_keys[s] = stream_key(seed, "worker-kind")
                pop._core_cap[s] = cap
                # scalar math.cos/math.sin here on purpose: the scalar
                # driver precomputes its phase constants the same way, and
                # build-time is the one place a libm difference could
                # still sneak into the bit-identity contract
                phase = keyed_uniform(stream_key(seed, "phase"), 0, -1.5, 1.5)
                angle = 2 * math.pi * phase / 24.0
                pop._cos_phase[s] = math.cos(angle)
                pop._sin_phase[s] = math.sin(angle)
        return pop

    @classmethod
    def demand_only(
        cls,
        root_rng: DeterministicRNG,
        tenants: int,
        *,
        profile: Optional[DiurnalProfile] = None,
        adjust_interval_s: float = 60.0,
        core_cap: Optional[float] = None,
        registry: Optional[MetricRegistry] = None,
    ) -> "TenantPopulation":
        """A population with no kernels: one virtual tenant per "host"."""
        return cls.for_hosts(
            root_rng,
            [None] * tenants,
            profile=profile,
            adjust_interval_s=adjust_interval_s,
            core_cap=core_cap,
            registry=registry,
        )

    # ------------------------------------------------------------------
    # queries

    def __len__(self) -> int:
        return self.n

    def view(self, slot: int) -> TenantView:
        return TenantView(self, slot)

    def views(self) -> List[TenantView]:
        return [TenantView(self, s) for s in range(self.n)]

    def host_demand(self, host_label: int) -> float:
        """Aggregate spawned-worker CPU demand on one host (by label).

        Maintained incrementally on every spawn/kill/OOM so the plan
        fingerprint is O(1) per host per tick. Moves exactly when the
        kernel's own demand fingerprint moves.
        """
        return float(self._host_demand[self._label_to_host[host_label]])

    def worker_counts(self) -> "np.ndarray":
        """Current per-tenant worker counts (copy)."""
        return self.workers.copy()

    def _active_rows(self, dark_hosts) -> Optional["np.ndarray"]:
        """Bool mask of rows not on a dark host (None = all active)."""
        if not dark_hosts:
            return None
        mask = np.ones(self.n, dtype=bool)
        k = self.k_per_host
        for label in dark_hosts:
            h = self._label_to_host.get(label)
            if h is not None:
                mask[h * k : (h + 1) * k] = False
        return mask

    def next_event_time(self, now: float, dark_hosts=frozenset()) -> float:
        """Next adjustment boundary over the non-dark rows (strictly > now).

        Every row's next decision is on the shared grid at or before
        ``index_at(now) + 1``, so the fold over any non-empty active set
        collapses to the next grid boundary — O(1) regardless of N.
        """
        if self.n == 0:
            return math.inf
        if dark_hosts:
            active = self._active_rows(dark_hosts)
            if active is not None and not active.any():
                return math.inf
        return self.grid.time_of(self.grid.index_at(now) + 1)

    # ------------------------------------------------------------------
    # stepping

    def step(self, now: float, dt: float, dark_hosts=frozenset()) -> None:
        """Advance every non-dark tenant to ``now``; call once per tick.

        Columnar mirror of ``DiurnalTenantDriver.step``: adopt fresh
        rows onto the grid, replay missed boundaries for lagging rows
        (scalar loop — only dark-recovery and clock gaps land here), run
        one vector burst lottery for the current boundary, evaluate all
        targets in array math, then touch per-object state only for rows
        whose worker set changes.
        """
        if dt <= 0:
            raise SimulationError(f"tenant step needs positive dt: {dt}")
        self._c_steps.value += 1
        active = self._active_rows(dark_hosts)
        self._c_ticks.value += self.n if active is None else int(active.sum())
        k_now = self.grid.index_at(now)
        nk = self.next_k
        fresh = nk < 0
        if active is not None:
            fresh &= active
        if fresh.any():
            nk[fresh] = k_now
        due = nk <= k_now
        if active is not None:
            due &= active
        rows = np.nonzero(due)[0]
        if rows.size == 0:
            return
        self._c_adjust.value += int(rows.size)
        p = self.profile
        p_burst = p.bursts_per_day * self.adjust_interval_s / SECONDS_PER_DAY
        lagging = rows[nk[rows] < k_now]
        for s in lagging:
            key = int(self._burst_keys[s])
            until = float(self.burst_until[s])
            for k in range(int(nk[s]), k_now):
                boundary = self.grid.time_of(k)
                if boundary >= until and keyed_u01(key, k) < p_burst:
                    until = boundary + p.burst_duration_s
                    self._c_bursts.value += 1
            self.burst_until[s] = until
        boundary_now = self.grid.time_of(k_now)
        draws = keyed_u01_array(self._burst_keys[rows], k_now)
        hit = (boundary_now >= self.burst_until[rows]) & (draws < p_burst)
        if hit.any():
            self.burst_until[rows[hit]] = boundary_now + p.burst_duration_s
            self._c_bursts.value += int(hit.sum())
        nk[rows] = k_now + 1

        want = np.rint(self._targets(now, k_now, rows)).astype(np.int64)
        self._reconcile(rows, want)

    def _targets(self, now: float, k_now: int, rows: "np.ndarray") -> "np.ndarray":
        """Vector ``DiurnalTenantDriver.target_cores`` over ``rows``.

        Same expression shapes, same operation order; the only per-call
        trig is on the *scalar* time-dependent angle (the per-tenant
        phase is folded in via precomputed cos/sin columns).
        """
        p = self.profile
        day = int(now // SECONDS_PER_DAY)
        if self._day_cache != day:
            lo, hi = p.day_factor_range
            self._day_factor = keyed_uniform_array(self._day_keys, day, lo, hi)
            self._day_cache = day
        hour = (now % SECONDS_PER_DAY) / 3600.0
        angle = 2 * math.pi * (hour - p.peak_hour) / 24.0
        cos_a = math.cos(angle)
        sin_a = math.sin(angle)
        shape = 0.5 * (
            1.0 + (cos_a * self._cos_phase[rows] - sin_a * self._sin_phase[rows])
        )
        target = p.base_cores + p.peak_cores * shape * self._day_factor[rows]
        target = np.where(now < self.burst_until[rows], target + p.burst_cores, target)
        noise = keyed_gauss_array(self._noise_keys[rows], k_now, p.noise)
        target = target * np.maximum(0.0, 1.0 + noise)
        return np.minimum(target, self._core_cap[rows])

    # ------------------------------------------------------------------
    # worker reconciliation (the per-object tail)

    def _reconcile(self, rows: "np.ndarray", want: "np.ndarray") -> None:
        if not self._materialized:
            current = self.workers[rows]
            want = np.maximum(want, 0)
            spawned = np.maximum(want - current, 0)
            self._spawn_seq[rows] += spawned  # keep kind ordinals aligned
            self._c_spawns.value += int(spawned.sum())
            self._c_kills.value += int(np.maximum(current - want, 0).sum())
            self.workers[rows] = want
            return
        if self._dirty_any:
            for s in rows[self._dirty[rows]]:
                self._prune(int(s))
            self._dirty_any = bool(self._dirty.any())
        changed = np.nonzero(want != self.workers[rows])[0]
        # ascending row order == global tenant-id order: the same spawn /
        # container-creation order a serial per-object loop produces
        he = self.host_engine
        k = self.k_per_host
        for j in changed:
            s = int(rows[j])
            goal = int(want[j])
            if he is not None and he.is_cold(s // k):
                self._cold_reconcile(he, s // k, s, max(goal, 0))
                continue
            tasks = self._tasks[s]
            while len(tasks) < goal:
                self._spawn_worker(s)
            while len(tasks) > goal and tasks:
                self._kill_worker(s)
            self.workers[s] = len(tasks)

    def _cold_reconcile(self, he, host: int, s: int, goal: int) -> None:
        """Reconcile one row on a cold host without touching its kernel.

        The draws, spawn ordinals, demand bookkeeping and metric counters
        move exactly as in ``_spawn_worker`` / ``_kill_worker``; the
        kernel-facing half becomes deferred ops in the host engine, which
        replays them through the real container/exec/kill path if the
        host ever materializes.
        """
        from repro.runtime.workload import idle as _idle_workload

        engine = self._engines[host]
        cur = int(self.workers[s])
        while cur < goal:
            seq = int(self._spawn_seq[s])
            self._spawn_seq[s] = seq + 1
            kind = keyed_u01(int(self._kind_keys[s]), seq)
            workload = _web_workload() if kind < 0.6 else _batch_workload()
            if engine is not None and not he.row_has_container(s):
                # first spawn creates the container (its init task joins
                # the scheduler before the worker, like start_init does)
                he.cold_container(host, s, _idle_workload().phases[0])
            he.cold_spawn(host, s, seq, workload.phases[0])
            self._host_demand[host] += workload.demand()
            self._c_spawns.value += 1
            cur += 1
        while cur > goal:
            demand = he.cold_kill(host, s)
            self._host_demand[host] -= demand
            self._c_kills.value += 1
            cur -= 1
        self.workers[s] = cur

    # ------------------------------------------------------------------
    # deferred-op replay (called by the host engine during ensure_hot,
    # with the clock rewound to the op's original barrier)

    def replay_container(self, s: int) -> None:
        """Replay a deferred container creation (init task and all)."""
        self._container_for(s)

    def replay_spawn(self, s: int, seq: int) -> None:
        """Replay one deferred worker spawn.

        The kind draw is keyed on the spawn ordinal, so recomputing it
        here yields the workload the scalar path would have picked; the
        ``_spawn_seq`` / ``_host_demand`` columns were already advanced
        virtually by ``_cold_reconcile`` and must not move again.
        """
        kind = keyed_u01(int(self._kind_keys[s]), seq)
        workload = _web_workload() if kind < 0.6 else _batch_workload()
        container = self._container_for(s)
        if container is not None:
            task = container.exec(workload.name, workload=workload)
        else:
            task = self._kernels[s // self.k_per_host].spawn(
                workload.name, workload=workload
            )
        self._tasks[s].append(task)
        self._task_info[id(task)] = (s, workload.demand())

    def replay_kill(self, s: int) -> None:
        """Replay one deferred worker kill (LIFO, like ``_kill_worker``)."""
        task = self._tasks[s].pop()
        self._task_info.pop(id(task), None)
        if not task.alive:
            return
        container = self._containers[s]
        if container is not None and task in container.tasks:
            container.kill_task(task)
        else:
            self._kernels[s // self.k_per_host].kill(task)

    def _container_for(self, s: int):
        engine = self._engines[s // self.k_per_host]
        if engine is None:
            return None
        container = self._containers[s]
        if container is None:
            name = container_name_for(s % self.k_per_host, self.k_per_host)
            container = engine.create(name=name)
            self._containers[s] = container
        return container

    def _spawn_worker(self, s: int) -> None:
        seq = int(self._spawn_seq[s])
        self._spawn_seq[s] = seq + 1
        kind = keyed_u01(int(self._kind_keys[s]), seq)
        workload = _web_workload() if kind < 0.6 else _batch_workload()
        container = self._container_for(s)
        if container is not None:
            task = container.exec(workload.name, workload=workload)
        else:
            task = self._kernels[s // self.k_per_host].spawn(
                workload.name, workload=workload
            )
        demand = workload.demand()
        self._tasks[s].append(task)
        self._task_info[id(task)] = (s, demand)
        self._host_demand[s // self.k_per_host] += demand
        self._c_spawns.value += 1

    def _kill_worker(self, s: int) -> None:
        task = self._tasks[s].pop()
        info = self._task_info.pop(id(task), None)
        if info is not None:
            self._host_demand[s // self.k_per_host] -= info[1]
        if not task.alive:
            return  # already reaped (e.g. OOM-killed by a fault injector)
        container = self._containers[s]
        if container is not None and task in container.tasks:
            container.kill_task(task)
        else:
            self._kernels[s // self.k_per_host].kill(task)
        self._c_kills.value += 1

    def _prune(self, s: int) -> None:
        alive = [t for t in self._tasks[s] if t.alive]
        dropped = len(self._tasks[s]) - len(alive)
        self._tasks[s] = alive
        self.workers[s] = len(alive)
        self._dirty[s] = False
        self._c_pruned.value += dropped

    # ------------------------------------------------------------------
    # fault-injection seam

    def note_task_killed(self, task: Task) -> bool:
        """Record an externally killed worker (the OOM-kill seam).

        Marks only the owning row dirty so the next adjustment re-scans
        that row's task list instead of the whole fleet. Returns True
        when the task belonged to this population.
        """
        info = self._task_info.pop(id(task), None)
        if info is None:
            return False
        s, demand = info
        self._dirty[s] = True
        self._dirty_any = True
        self._host_demand[s // self.k_per_host] -= demand
        return True

    # ------------------------------------------------------------------
    # instrumentation

    @property
    def steps(self) -> int:
        return self._c_steps.value

    @property
    def tenant_ticks(self) -> int:
        return self._c_ticks.value

    @property
    def adjustments(self) -> int:
        return self._c_adjust.value

    @property
    def bursts_started(self) -> int:
        return self._c_bursts.value

    @property
    def spawns(self) -> int:
        return self._c_spawns.value

    @property
    def kills(self) -> int:
        return self._c_kills.value

    @property
    def oom_pruned(self) -> int:
        return self._c_pruned.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TenantPopulation(n={self.n}, hosts={len(self._kernels)}, "
            f"k={self.k_per_host}, materialized={self._materialized})"
        )
