"""Physical topology: server wall power, racks, and PDUs.

RAPL meters the *package* (CPU+DRAM) only; the facility breaker sees wall
power — package plus the platform floor (PSU losses, fans, disks, NICs).
:func:`wall_power_watts` converts one to the other, with the constants
tuned so an 8-server rack spans roughly the 899–1199 W band of Figure 2
under benign diurnal load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.datacenter.breaker import BreakerState, CircuitBreaker
from repro.errors import SimulationError
from repro.kernel.kernel import Kernel


@dataclass(frozen=True)
class ServerPowerConfig:
    """Package-to-wall power conversion for one server model."""

    #: platform power independent of CPU/DRAM activity (fans, PSU, disks)
    platform_base_watts: float = 95.0
    #: wall watts per package watt (PSU efficiency + VRM losses)
    package_scaling: float = 1.0

    def __post_init__(self) -> None:
        if self.platform_base_watts < 0 or self.package_scaling <= 0:
            raise SimulationError("implausible server power config")


def package_power_watts(kernel: Kernel) -> float:
    """Ground-truth package power of one host from its last tick."""
    if kernel.last_tick is None:
        return kernel.power.idle_package_watts() * kernel.config.packages
    per_pkg = kernel.power.tick_energy(kernel.last_tick)
    return sum(e.package_j for e in per_pkg.values()) / kernel.last_tick.dt


def wall_power_watts(
    kernel: Kernel, config: Optional[ServerPowerConfig] = None
) -> float:
    """Wall power of one server (what the branch breaker sees)."""
    cfg = config or ServerPowerConfig()
    return cfg.platform_base_watts + cfg.package_scaling * package_power_watts(kernel)


class WallPowerCache:
    """Per-tick memo of each server's wall power.

    Wall power is a pure function of a kernel's ``last_tick``, which only
    changes when the kernel executes a tick — yet one simulation step used
    to recompute it up to three times per kernel (:meth:`Rack.observe`,
    the breaker-knee coalescing guard, and the trace sampler). Entries are
    keyed on ``kernel.ticks_taken``, so a clock advance that ticks the
    kernel invalidates its entry automatically and everything between two
    ticks is served from the memo.
    """

    def __init__(self, config: Optional[ServerPowerConfig] = None):
        self.config = config or ServerPowerConfig()
        #: id(kernel) -> (ticks_taken at computation, wall watts)
        self._entries: dict = {}
        self.hits = 0
        self.misses = 0
        #: columnar host engine; cold hosts answer straight from its wall
        #: column (their kernels' ``last_tick`` is frozen mid-deferral)
        self.host_engine = None
        self.cold_hits = 0

    def watts(self, kernel: Kernel) -> float:
        """Wall power of ``kernel`` now (memoized per executed tick)."""
        he = self.host_engine
        if he is not None:
            index = he.index_of(kernel)
            if index is not None and he.is_cold(index):
                self.cold_hits += 1
                return he.wall_watts(index)
        key = id(kernel)
        tick = kernel.ticks_taken
        entry = self._entries.get(key)
        if entry is not None and entry[0] == tick:
            self.hits += 1
            return entry[1]
        self.misses += 1
        value = wall_power_watts(kernel, self.config)
        self._entries[key] = (tick, value)
        return value

    def reset(self) -> None:
        """Drop all memo entries (hit/miss counters survive).

        Required after unpickling a checkpoint snapshot: entries are
        keyed on ``id(kernel)``, and the restored process assigns fresh
        ids — a recycled id could alias a stale entry onto a different
        kernel at a matching tick count.
        """
        self._entries.clear()


@dataclass
class Rack:
    """A rack: servers sharing one branch circuit breaker."""

    name: str
    kernels: List[Kernel]
    breaker: CircuitBreaker
    power_config: ServerPowerConfig = field(default_factory=ServerPowerConfig)
    #: optional shared per-tick memo (fleet drivers install one so the
    #: breaker feed, the coalescing guard, and the sampler agree for free)
    power_cache: Optional[WallPowerCache] = None

    def wall_power(self, exclude: frozenset = frozenset()) -> float:
        """Aggregate wall power of the rack right now.

        ``exclude`` holds ``id(kernel)`` of servers that draw no power
        despite belonging to the rack (crashed machines awaiting reboot).
        """
        if self.power_cache is not None:
            return sum(
                self.power_cache.watts(k)
                for k in self.kernels
                if id(k) not in exclude
            )
        return sum(
            wall_power_watts(k, self.power_config)
            for k in self.kernels
            if id(k) not in exclude
        )

    def observe(
        self, dt: float, now: float, exclude: frozenset = frozenset()
    ) -> BreakerState:
        """Feed the current load into the breaker."""
        return self.breaker.observe(self.wall_power(exclude), dt, now)

    @property
    def oversubscription_ratio(self) -> float:
        """Peak-capable load over breaker rating (>1 means oversubscribed).

        Peak per server is estimated as platform base plus every core
        running a power-virus-grade workload (~20 W/core in the default
        power model) plus loaded DRAM.
        """
        peak_per_server = [
            self.power_config.platform_base_watts
            + self.power_config.package_scaling
            * (
                k.power.idle_package_watts()
                + 20.0 * k.config.total_cores
            )
            for k in self.kernels
        ]
        return sum(peak_per_server) / self.breaker.rated_watts


@dataclass
class PDU:
    """A power distribution unit feeding several racks."""

    name: str
    racks: List[Rack]
    breaker: CircuitBreaker

    def wall_power(self) -> float:
        """Aggregate power over all racks."""
        return sum(rack.wall_power() for rack in self.racks)

    def observe(self, dt: float, now: float) -> BreakerState:
        """Feed rack breakers first, then the PDU breaker (selectivity)."""
        for rack in self.racks:
            rack.observe(dt, now)
        live = sum(
            rack.wall_power() for rack in self.racks if not rack.breaker.tripped
        )
        return self.breaker.observe(live, dt, now)
