"""Benign tenant load: the diurnal background the attacker rides on.

Real datacenter utilization averages 20–30% (Barroso et al., cited in
Section IV-A) but swings hard with time of day and with day-to-day demand
shocks; the paper's Figure 2 shows a 34.7% band (899–1199 W) over one week
with two high-demand days. :class:`DiurnalTenantDriver` reproduces that
structure: a sinusoidal daily cycle, per-day demand factors, Poisson batch
bursts, and noise — realized as actual containers running mixed workloads,
so every kernel counter (not just power) moves like a shared production
host.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import SimulationError
from repro.kernel.kernel import Kernel
from repro.kernel.process import Task
from repro.runtime.engine import ContainerEngine
from repro.runtime.workload import Workload, constant
from repro.sim.rng import DeterministicRNG

SECONDS_PER_DAY = 86400.0


@dataclass(frozen=True)
class DiurnalProfile:
    """Shape of one host's benign load."""

    #: demand floor, in cores
    base_cores: float = 0.3
    #: additional cores at the daily peak (before day factor)
    peak_cores: float = 3.4
    #: hour of day (0-24) at which load peaks
    peak_hour: float = 14.0
    #: mean per-day multiplicative demand factor range
    day_factor_range: tuple = (0.7, 1.45)
    #: expected batch bursts per day
    bursts_per_day: float = 3.0
    #: burst size in cores and duration in seconds
    burst_cores: float = 2.0
    burst_duration_s: float = 1800.0
    #: relative noise on the target demand
    noise: float = 0.08


def _web_workload() -> Workload:
    """A web-serving worker: branchy, syscall-y, some network."""
    return constant(
        "web-worker",
        cpu_demand=1.0,
        ipc=1.3,
        cache_miss_per_kinst=3.0,
        branch_miss_per_kinst=4.0,
        rss_mb=200.0,
        syscalls_per_sec=20_000.0,
        voluntary_switches_per_sec=5_000.0,
        net_kbps=20_000.0,
        io_ops_per_sec=50.0,
    )


def _batch_workload() -> Workload:
    """A batch/analytics worker: compute with real memory traffic."""
    return constant(
        "batch-worker",
        cpu_demand=1.0,
        ipc=1.8,
        cache_miss_per_kinst=6.0,
        branch_miss_per_kinst=2.0,
        rss_mb=800.0,
        syscalls_per_sec=500.0,
        voluntary_switches_per_sec=50.0,
        io_ops_per_sec=200.0,
    )


class DiurnalTenantDriver:
    """Keeps one host's benign load tracking a diurnal demand target."""

    def __init__(
        self,
        kernel: Kernel,
        rng: DeterministicRNG,
        profile: Optional[DiurnalProfile] = None,
        engine: Optional[ContainerEngine] = None,
        adjust_interval_s: float = 60.0,
    ):
        self.kernel = kernel
        self.rng = rng
        self.profile = profile or DiurnalProfile()
        self.adjust_interval_s = adjust_interval_s
        self._engine = engine
        self._container = None
        self._workers: List[Task] = []
        self._next_adjust = 0.0
        self._burst_until = -1.0
        self._day_factors = {}
        self._phase_shift = rng.uniform("phase", -1.5, 1.5)

    # ------------------------------------------------------------------

    def _day_factor(self, day: int) -> float:
        factor = self._day_factors.get(day)
        if factor is None:
            lo, hi = self.profile.day_factor_range
            factor = self.rng.stream("day-factor").uniform(lo, hi)
            self._day_factors[day] = factor
        return factor

    def target_cores(self, now: float) -> float:
        """The demand target (in cores) at virtual time ``now``."""
        p = self.profile
        day = int(now // SECONDS_PER_DAY)
        hour = (now % SECONDS_PER_DAY) / 3600.0 + self._phase_shift
        # daily shape: raised cosine peaking at peak_hour
        shape = 0.5 * (1.0 + math.cos(2 * math.pi * (hour - p.peak_hour) / 24.0))
        target = p.base_cores + p.peak_cores * shape * self._day_factor(day)
        if now < self._burst_until:
            target += p.burst_cores
        noise = self.rng.stream("demand-noise").gauss(0.0, p.noise)
        target *= max(0.0, 1.0 + noise)
        return min(target, self.kernel.config.total_cores * 0.9)

    # ------------------------------------------------------------------

    def _container_for_workers(self):
        if self._engine is None:
            return None
        if self._container is None:
            self._container = self._engine.create(name="benign-tenant")
        return self._container

    def _spawn_worker(self) -> Task:
        kind = self.rng.stream("worker-kind").random()
        workload = _web_workload() if kind < 0.6 else _batch_workload()
        container = self._container_for_workers()
        if container is not None:
            return container.exec(workload.name, workload=workload)
        return self.kernel.spawn(workload.name, workload=workload)

    def _kill_worker(self, task: Task) -> None:
        if not task.alive:
            return  # already reaped (e.g. OOM-killed by a fault injector)
        if self._container is not None and task in self._container.tasks:
            self._container.kill_task(task)
        else:
            self.kernel.kill(task)

    def next_event_time(self, now: float) -> float:
        """Absolute virtual time of this driver's next decision point.

        Between adjustments the driver leaves its worker set untouched,
        so a tick-coalescing engine may advance straight to the next
        adjustment (bursts only start or end at adjustment boundaries —
        ``_burst_until`` is consulted when targets are recomputed).
        """
        return max(self._next_adjust, now)

    def step(self, now: float, dt: float) -> None:
        """Advance the driver; call once per simulation tick."""
        if dt <= 0:
            raise SimulationError(f"tenant step needs positive dt: {dt}")
        if now < self._next_adjust:
            return
        self._next_adjust = now + self.adjust_interval_s
        # drop workers something else killed (fault-injected OOM kills)
        self._workers = [t for t in self._workers if t.alive]

        # Poisson burst arrivals, checked once per adjustment
        p_burst = self.profile.bursts_per_day * self.adjust_interval_s / SECONDS_PER_DAY
        if now >= self._burst_until and self.rng.stream("burst").random() < p_burst:
            self._burst_until = now + self.profile.burst_duration_s

        target = self.target_cores(now)
        current = len(self._workers)
        want = int(round(target))
        while current < want:
            self._workers.append(self._spawn_worker())
            current += 1
        while current > want and self._workers:
            victim = self._workers.pop()
            self._kill_worker(victim)
            current -= 1

    @property
    def worker_count(self) -> int:
        """Number of live benign workers."""
        return len(self._workers)
