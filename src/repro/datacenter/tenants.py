"""Benign tenant load: the diurnal background the attacker rides on.

Real datacenter utilization averages 20–30% (Barroso et al., cited in
Section IV-A) but swings hard with time of day and with day-to-day demand
shocks; the paper's Figure 2 shows a 34.7% band (899–1199 W) over one week
with two high-demand days. :class:`DiurnalTenantDriver` reproduces that
structure: a sinusoidal daily cycle, per-day demand factors, Poisson batch
bursts, and noise — realized as actual containers running mixed workloads,
so every kernel counter (not just power) moves like a shared production
host.

Every random decision is a *keyed* draw (:mod:`repro.sim.rng`): the burst
lottery at adjustment boundary ``k`` is ``burst@<k>``, the demand factor
for day ``d`` is ``day-factor@<d>``, demand noise is keyed by the grid
index, and worker kinds by spawn ordinal. Draws therefore depend only on
the tenant seed and the decision's identity — never on visit order, tick
size, or how many other draws happened first — which is what lets the
columnar :class:`~repro.datacenter.population.TenantPopulation` replay
this driver bit-for-bit from numpy arrays. Adjustments are anchored to an
absolute :class:`~repro.sim.fastforward.DecisionGrid` (boundaries at
``k * adjust_interval_s``), and :meth:`DiurnalTenantDriver.step` replays
every boundary the clock jumped over, so burst arrival statistics match
fine-ticked runs no matter how coarsely the driver is stepped.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import SimulationError
from repro.kernel.kernel import Kernel
from repro.kernel.process import Task
from repro.runtime.engine import ContainerEngine
from repro.runtime.workload import Workload, constant
from repro.sim.fastforward import DecisionGrid
from repro.sim.rng import DeterministicRNG

SECONDS_PER_DAY = 86400.0

#: fraction of a host's cores a tenant may claim (headroom for daemons)
CORE_CAP_FRACTION = 0.9


@dataclass(frozen=True)
class DiurnalProfile:
    """Shape of one host's benign load."""

    #: demand floor, in cores
    base_cores: float = 0.3
    #: additional cores at the daily peak (before day factor)
    peak_cores: float = 3.4
    #: hour of day (0-24) at which load peaks
    peak_hour: float = 14.0
    #: mean per-day multiplicative demand factor range
    day_factor_range: tuple = (0.7, 1.45)
    #: expected batch bursts per day
    bursts_per_day: float = 3.0
    #: burst size in cores and duration in seconds
    burst_cores: float = 2.0
    burst_duration_s: float = 1800.0
    #: relative noise on the target demand
    noise: float = 0.08


#: a deliberately tiny profile for large-population experiments: demand
#: stays fractional so most adjustments move no workers, and the columnar
#: engine's per-tick cost is pure array math.
MICRO_PROFILE = DiurnalProfile(
    base_cores=0.05,
    peak_cores=0.6,
    burst_cores=0.4,
    bursts_per_day=2.0,
    noise=0.05,
)


def _web_workload() -> Workload:
    """A web-serving worker: branchy, syscall-y, some network."""
    return constant(
        "web-worker",
        cpu_demand=1.0,
        ipc=1.3,
        cache_miss_per_kinst=3.0,
        branch_miss_per_kinst=4.0,
        rss_mb=200.0,
        syscalls_per_sec=20_000.0,
        voluntary_switches_per_sec=5_000.0,
        net_kbps=20_000.0,
        io_ops_per_sec=50.0,
    )


def _batch_workload() -> Workload:
    """A batch/analytics worker: compute with real memory traffic."""
    return constant(
        "batch-worker",
        cpu_demand=1.0,
        ipc=1.8,
        cache_miss_per_kinst=6.0,
        branch_miss_per_kinst=2.0,
        rss_mb=800.0,
        syscalls_per_sec=500.0,
        voluntary_switches_per_sec=50.0,
        io_ops_per_sec=200.0,
    )


class DiurnalTenantDriver:
    """Keeps one host's benign load tracking a diurnal demand target.

    This is the scalar *reference* implementation of the tenant demand
    process: one Python object per tenant, plain-float arithmetic. The
    columnar :class:`~repro.datacenter.population.TenantPopulation`
    evaluates the same keyed draws and the same float expressions over
    numpy arrays and must match it bit for bit
    (``tests/datacenter/test_population.py`` pins the equivalence).

    ``kernel=None`` puts the driver in *demand-only* mode: targets and
    worker counts are tracked virtually with no tasks materialized —
    useful for statistics tests and throughput benches. ``core_cap``
    bounds the demand target in that mode (a kernel's core budget
    otherwise).
    """

    def __init__(
        self,
        kernel: Optional[Kernel],
        rng: DeterministicRNG,
        profile: Optional[DiurnalProfile] = None,
        engine: Optional[ContainerEngine] = None,
        adjust_interval_s: float = 60.0,
        container_name: str = "benign-tenant",
        core_cap: Optional[float] = None,
    ):
        self.kernel = kernel
        self.rng = rng
        self.profile = profile or DiurnalProfile()
        self.adjust_interval_s = adjust_interval_s
        self.grid = DecisionGrid(adjust_interval_s)
        self.container_name = container_name
        self._engine = engine
        self._container = None
        self._workers: List[Task] = []
        self._virtual_workers = 0
        #: next unprocessed grid boundary; None until the first step
        self._next_k: Optional[int] = None
        self._burst_until = -1.0
        self._spawn_seq = 0
        if core_cap is None:
            core_cap = (
                math.inf if kernel is None else kernel.config.total_cores * CORE_CAP_FRACTION
            )
        self._core_cap = core_cap
        self._burst_key = rng.keyed("burst")
        self._day_key = rng.keyed("day-factor")
        self._noise_key = rng.keyed("demand-noise")
        self._kind_key = rng.keyed("worker-kind")
        self._phase_shift = rng.keyed("phase").uniform(0, -1.5, 1.5)

    # ------------------------------------------------------------------

    @property
    def _phase_shift(self) -> float:
        return self._phase

    @_phase_shift.setter
    def _phase_shift(self, value: float) -> None:
        # The diurnal shape is evaluated as cos(A + P) = cosA*cosP - sinA*sinP
        # with the per-tenant phase term P fixed at construction; only
        # mul/add remain per evaluation, which is what keeps the scalar
        # and vectorized paths bit-identical (no per-element libm trig).
        self._phase = value
        angle = 2 * math.pi * value / 24.0
        self._cos_phase = math.cos(angle)
        self._sin_phase = math.sin(angle)

    def _day_factor(self, day: int) -> float:
        lo, hi = self.profile.day_factor_range
        return self._day_key.uniform(day, lo, hi)

    def target_cores(self, now: float) -> float:
        """The demand target (in cores) at virtual time ``now``.

        Side-effect free: every stochastic term is a keyed draw addressed
        by day / grid index, so probing the target at arbitrary times
        never perturbs the demand process.
        """
        p = self.profile
        day = int(now // SECONDS_PER_DAY)
        hour = (now % SECONDS_PER_DAY) / 3600.0
        # daily shape: raised cosine peaking at peak_hour (phase folded in
        # via the addition formula; see _phase_shift)
        angle = 2 * math.pi * (hour - p.peak_hour) / 24.0
        shape = 0.5 * (
            1.0 + (math.cos(angle) * self._cos_phase - math.sin(angle) * self._sin_phase)
        )
        target = p.base_cores + p.peak_cores * shape * self._day_factor(day)
        if now < self._burst_until:
            target += p.burst_cores
        noise = self._noise_key.gauss(self.grid.index_at(now), p.noise)
        target *= max(0.0, 1.0 + noise)
        return min(target, self._core_cap)

    # ------------------------------------------------------------------

    def _container_for_workers(self):
        if self._engine is None:
            return None
        if self._container is None:
            self._container = self._engine.create(name=self.container_name)
        return self._container

    def _spawn_worker(self) -> Task:
        kind = self._kind_key.u01(self._spawn_seq)
        self._spawn_seq += 1
        workload = _web_workload() if kind < 0.6 else _batch_workload()
        container = self._container_for_workers()
        if container is not None:
            return container.exec(workload.name, workload=workload)
        return self.kernel.spawn(workload.name, workload=workload)

    def _kill_worker(self, task: Task) -> None:
        if not task.alive:
            return  # already reaped (e.g. OOM-killed by a fault injector)
        if self._container is not None and task in self._container.tasks:
            self._container.kill_task(task)
        else:
            self.kernel.kill(task)

    @property
    def burst_until(self) -> float:
        """Virtual end time of the burst in progress (-1 before any)."""
        return self._burst_until

    def next_event_time(self, now: float) -> float:
        """Absolute virtual time of this driver's next decision point.

        Between adjustments the driver leaves its worker set untouched,
        so a tick-coalescing engine may advance straight to the next
        adjustment boundary (bursts only start or end at boundaries —
        ``_burst_until`` is consulted when targets are recomputed). The
        result is always strictly greater than ``now``: a driver sitting
        exactly on a boundary has already had (or is about to get) its
        ``step`` for that boundary, so advertising the boundary itself
        would hand the coalescing engine a zero-length horizon and
        silently disable coalescing.
        """
        return self.grid.next_boundary(now, self._next_k)

    def step(self, now: float, dt: float) -> None:
        """Advance the driver; call once per simulation tick.

        Adjustment boundaries live on the absolute grid ``k *
        adjust_interval_s``. When ``now`` has advanced past several
        boundaries since the last step (coarse ``dt``, tick coalescing, a
        host going dark, clock gaps between runs), every missed
        boundary's burst lottery is replayed in order — draw ``burst@k``
        gated on the boundary falling outside the burst then in progress
        — so burst arrival statistics are independent of how the clock
        got here. The worker set itself is reconciled once, against the
        current target.
        """
        if dt <= 0:
            raise SimulationError(f"tenant step needs positive dt: {dt}")
        k_now = self.grid.index_at(now)
        if self._next_k is None:
            self._next_k = k_now  # first step: adopt the current boundary
        if k_now < self._next_k:
            return
        p = self.profile
        p_burst = p.bursts_per_day * self.adjust_interval_s / SECONDS_PER_DAY
        for k in range(self._next_k, k_now + 1):
            boundary = self.grid.time_of(k)
            if boundary >= self._burst_until and self._burst_key.u01(k) < p_burst:
                self._burst_until = boundary + p.burst_duration_s
        self._next_k = k_now + 1

        target = self.target_cores(now)
        want = int(round(target))
        if self.kernel is None:
            spawned = max(0, want - self._virtual_workers)
            self._spawn_seq += spawned  # keep worker-kind ordinals aligned
            self._virtual_workers = max(0, want)
            return
        # drop workers something else killed (fault-injected OOM kills)
        self._workers = [t for t in self._workers if t.alive]
        current = len(self._workers)
        while current < want:
            self._workers.append(self._spawn_worker())
            current += 1
        while current > want and self._workers:
            victim = self._workers.pop()
            self._kill_worker(victim)
            current -= 1

    @property
    def worker_count(self) -> int:
        """Number of benign workers (live tasks, or virtual count)."""
        if self.kernel is None:
            return self._virtual_workers
        return len(self._workers)
