"""A minimal discrete-event loop layered over :class:`VirtualClock`.

The kernel itself advances in fixed ticks, but experiment drivers (attack
campaigns, tenant churn, week-long fleet traces) want "at time T, do X"
semantics. :class:`EventLoop` provides that: events fire in timestamp order,
interleaved with periodic kernel ticks.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock


@dataclass(order=True)
class ScheduledEvent:
    """An action scheduled at an absolute virtual time.

    Ordering is (time, sequence) so ties fire in scheduling order.
    """

    when: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    name: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent the event from firing (it stays in the queue, inert)."""
        self.cancelled = True


class EventLoop:
    """Timestamp-ordered event execution over a shared virtual clock.

    Parameters
    ----------
    clock:
        The clock to advance. Multiple loops over one clock are not
        supported; drivers should share a single loop.
    """

    def __init__(self, clock: VirtualClock):
        self.clock = clock
        self._queue: List[ScheduledEvent] = []
        self._seq = itertools.count()

    def schedule_at(
        self, when: float, action: Callable[[], None], name: str = ""
    ) -> ScheduledEvent:
        """Schedule ``action`` at absolute time ``when`` (>= now)."""
        if when < self.clock.now:
            raise SimulationError(
                f"cannot schedule event {name!r} at {when}: clock is at {self.clock.now}"
            )
        event = ScheduledEvent(when=when, seq=next(self._seq), action=action, name=name)
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(
        self, delay: float, action: Callable[[], None], name: str = ""
    ) -> ScheduledEvent:
        """Schedule ``action`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay for event {name!r}: {delay}")
        return self.schedule_at(self.clock.now + delay, action, name)

    def schedule_every(
        self,
        interval: float,
        action: Callable[[], None],
        name: str = "",
        first_delay: Optional[float] = None,
    ) -> ScheduledEvent:
        """Schedule a repeating action; returns the *first* event.

        Cancelling the returned event stops only the firing that has already
        been queued; to stop a repeating action permanently, make ``action``
        raise :class:`StopIteration` — the loop swallows it and stops
        rescheduling.
        """
        if interval <= 0:
            raise SimulationError(f"repeat interval must be positive: {interval}")

        def repeat() -> None:
            try:
                action()
            except StopIteration:
                return
            self.schedule_in(interval, repeat, name)

        delay = interval if first_delay is None else first_delay
        return self.schedule_in(delay, repeat, name)

    def run_until(self, deadline: float) -> int:
        """Fire all events up to ``deadline``; returns the number fired.

        The clock finishes exactly at ``deadline`` even if the last event
        fires earlier (or no events exist at all).
        """
        if deadline < self.clock.now:
            raise SimulationError(
                f"deadline {deadline} is before current time {self.clock.now}"
            )
        fired = 0
        while self._queue and self._queue[0].when <= deadline:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.clock.sleep_until(event.when)
            event.action()
            fired += 1
        self.clock.sleep_until(deadline)
        return fired

    @property
    def pending(self) -> int:
        """Number of queued, non-cancelled events."""
        return sum(1 for e in self._queue if not e.cancelled)
