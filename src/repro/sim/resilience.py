"""Checkpoint/restore and shard supervision for the parallel fleet.

The whole stack is deterministic — keyed stateless RNG draws, seeded
fault schedules, absolute decision grids — so recovery can be
*bit-identical* to an uninterrupted run: a shard restored from its last
snapshot and replayed forward over the logged control frames lands in
exactly the state the dead worker held, and a campaign resumed from disk
produces the same power traces and merged timelines as the golden run.

This module holds the pieces shared by the driver and the workers:

* :class:`ResilienceConfig` — the knobs (`checkpoint_dir`,
  `checkpoint_every`, `barrier_timeout_s`, `max_restarts`, `supervise`),
  enabled per-simulation via ``DatacenterSimulation.enable_resilience``.
* the on-disk snapshot format: one versioned pickle per shard per
  checkpoint (``shard-SS-SEQSEQ.ckpt``) plus a driver ``manifest.ckpt``,
  each written atomically (tmp file + ``os.replace``) so a crash mid-write
  never corrupts the previous checkpoint.
* :class:`ResilienceMetrics` — ``resilience.*`` counters on the
  simulation's metric registry (restarts, replayed frames/ticks,
  checkpoint bytes/seconds, recovery wall time).

The protocol-level machinery (supervisor loop, frame log, replay) lives
in :mod:`repro.sim.parallel`; the campaign-resume plumbing lives in
``DatacenterSimulation.run(resume=True)``. See ``docs/resilience.md``.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from typing import Optional

from repro.errors import SimulationError

#: version stamp embedded in every per-shard snapshot payload
SNAPSHOT_VERSION = 1

#: version stamp embedded in the driver-side manifest
#: (2: manifests record the control-plane configuration — transport mode
#: and epoch-tick budget — so a resume cannot silently change the frame
#: schedule the logged replay frames were recorded under)
MANIFEST_VERSION = 2


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs for checkpointing and shard supervision.

    ``checkpoint_dir=None`` disables checkpointing (supervised respawn
    then rebuilds dead shards from scratch and replays the full frame
    log). ``supervise=False`` keeps the hang/death *detection* (the
    barrier timeout raises a descriptive ``SimulationError``) but never
    respawns.
    """

    checkpoint_dir: Optional[str] = None
    #: sim-seconds between checkpoints (taken at the first barrier at or
    #: past each ``origin + k * checkpoint_every`` boundary)
    checkpoint_every: float = 300.0
    #: wall-clock seconds the driver waits on a shard reply before the
    #: shard is declared hung
    barrier_timeout_s: float = 600.0
    #: per-shard respawn budget; exceeding it aborts the run
    max_restarts: int = 2
    #: respawn dead/hung shards (False: detect and abort only)
    supervise: bool = True

    def __post_init__(self) -> None:
        if self.checkpoint_every <= 0:
            raise SimulationError("checkpoint_every must be positive")
        if self.barrier_timeout_s <= 0:
            raise SimulationError("barrier_timeout_s must be positive")
        if self.max_restarts < 0:
            raise SimulationError("max_restarts must be >= 0")


# ---------------------------------------------------------------------------
# on-disk layout


def shard_snapshot_path(directory: str, shard: int, seq: int) -> str:
    """Path of shard ``shard``'s snapshot for checkpoint ``seq``."""
    return os.path.join(directory, f"shard-{shard:02d}-{seq:06d}.ckpt")


def manifest_path(directory: str) -> str:
    """Path of the driver-side manifest (always the latest checkpoint)."""
    return os.path.join(directory, "manifest.ckpt")


def atomic_write(path: str, blob: bytes) -> None:
    """Write ``blob`` to ``path`` atomically (tmp file + rename).

    A crash mid-checkpoint must never corrupt the previous checkpoint:
    the rename either fully lands the new file or leaves the old one.
    """
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(blob)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def read_snapshot(path: str) -> dict:
    """Load and version-check a per-shard snapshot payload."""
    try:
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
    except FileNotFoundError:
        raise SimulationError(f"checkpoint snapshot missing: {path}")
    version = payload.get("version")
    if version != SNAPSHOT_VERSION:
        raise SimulationError(
            f"snapshot {path} has version {version!r}, "
            f"this build reads version {SNAPSHOT_VERSION}"
        )
    return payload


def load_manifest(directory: str) -> dict:
    """Load and version-check the driver manifest from a checkpoint dir."""
    path = manifest_path(directory)
    try:
        with open(path, "rb") as fh:
            manifest = pickle.load(fh)
    except FileNotFoundError:
        raise SimulationError(
            f"no checkpoint manifest in {directory!r} — nothing to resume "
            "(was the run checkpointed with --checkpoint-dir?)"
        )
    version = manifest.get("version")
    if version != MANIFEST_VERSION:
        raise SimulationError(
            f"manifest {path} has version {version!r}, "
            f"this build reads version {MANIFEST_VERSION}"
        )
    return manifest


# ---------------------------------------------------------------------------
# metrics


class ResilienceMetrics:
    """Facade over the ``resilience.*`` instruments.

    Registered lazily by the parallel engine when a resilience config is
    present, on the same registry as ``sim.*`` / ``ipc.*`` so restarts and
    checkpoint costs show up in the unified metrics render and exports.
    """

    def __init__(self, registry) -> None:
        self._restarts = registry.counter(
            "resilience.restarts", "shard workers respawned after death/hang"
        )
        self._replayed_frames = registry.counter(
            "resilience.replayed_frames",
            "control frames replayed into respawned shards",
        )
        self._replayed_ticks = registry.counter(
            "resilience.replayed_ticks",
            "commit/step frames replayed into respawned shards",
        )
        self._checkpoints = registry.counter(
            "resilience.checkpoints", "checkpoints written"
        )
        self._checkpoint_bytes = registry.counter(
            "resilience.checkpoint_bytes", "total snapshot bytes written"
        )
        self._checkpoint_wall_s = registry.counter(
            "resilience.checkpoint_wall_s",
            "driver wall seconds spent in checkpoint barriers",
        )
        self._recovery_wall_s = registry.counter(
            "resilience.recovery_wall_s",
            "driver wall seconds spent respawning + replaying shards",
        )

    @property
    def restarts(self) -> int:
        return self._restarts.value

    @property
    def replayed_frames(self) -> int:
        return self._replayed_frames.value

    @property
    def replayed_ticks(self) -> int:
        return self._replayed_ticks.value

    @property
    def checkpoints(self) -> int:
        return self._checkpoints.value

    @property
    def checkpoint_bytes(self) -> int:
        return self._checkpoint_bytes.value

    @property
    def checkpoint_wall_s(self) -> float:
        return self._checkpoint_wall_s.value

    @property
    def recovery_wall_s(self) -> float:
        return self._recovery_wall_s.value

    def record_restart(self) -> None:
        self._restarts.value += 1

    def record_replay(self, frames: int, ticks: int, wall_s: float) -> None:
        self._replayed_frames.value += frames
        self._replayed_ticks.value += ticks
        self._recovery_wall_s.value += wall_s

    def record_checkpoint(self, nbytes: int, wall_s: float) -> None:
        self._checkpoints.value += 1
        self._checkpoint_bytes.value += nbytes
        self._checkpoint_wall_s.value += wall_s
