"""Virtual time for the simulated host and datacenter.

A :class:`VirtualClock` tracks seconds since an arbitrary epoch. Simulated
kernels boot at some clock reading and derive their uptime from it, exactly
as ``/proc/uptime`` derives from the kernel's boot timestamp.
"""

from __future__ import annotations

from repro.errors import SimulationError


class VirtualClock:
    """Monotonic simulated clock measured in (float) seconds.

    Parameters
    ----------
    start:
        Initial reading of the clock in seconds. Defaults to ``0.0``; fleet
        simulations typically use a large epoch so that server boot times
        look like realistic absolute timestamps.
    """

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise SimulationError(f"clock cannot start at negative time: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current reading in seconds since the epoch."""
        return self._now

    def advance(self, dt: float) -> float:
        """Advance the clock by ``dt`` seconds and return the new reading.

        ``dt`` must be strictly positive: virtual time never moves backwards
        and zero-length steps usually indicate a driver bug, so both are
        rejected loudly rather than silently tolerated.
        """
        if dt <= 0:
            raise SimulationError(f"clock must advance by a positive dt, got {dt}")
        self._now += dt
        return self._now

    def replay_window(self, start: float) -> "_ReplayWindow":
        """Context manager that rewinds the clock to ``start`` for a replay.

        The columnar host engine materializes a cold host by replaying its
        logged ticks through the real per-object :class:`Kernel.tick` path;
        those ticks must see the clock readings of the original window, so
        this is the one sanctioned way to move the clock backwards. The
        clock is restored to its entry reading on exit, even on error, and
        a ``start`` ahead of now is rejected (that would be time travel of
        the other kind).
        """
        if start > self._now:
            raise SimulationError(
                f"cannot replay from {start}: clock is only at {self._now}"
            )
        return _ReplayWindow(self, start)

    def sleep_until(self, when: float) -> float:
        """Advance the clock to the absolute time ``when``.

        Returns the amount of time slept. A ``when`` in the past raises
        :class:`SimulationError`; a ``when`` equal to now is a no-op.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot sleep until {when}: clock is already at {self._now}"
            )
        slept = when - self._now
        if slept > 0:
            self._now = when
        return slept

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.3f})"


class _ReplayWindow:
    """Scoped clock rewind for deferred-tick replay (see ``replay_window``)."""

    __slots__ = ("_clock", "_start", "_restore")

    def __init__(self, clock: VirtualClock, start: float):
        self._clock = clock
        self._start = start
        self._restore = clock._now

    def __enter__(self) -> VirtualClock:
        self._clock._now = float(self._start)
        return self._clock

    def __exit__(self, *exc) -> None:
        self._clock._now = self._restore
