"""Deterministic randomness shared by every simulated component.

Each subsystem that needs noise (sensor jitter, tenant burstiness, placement)
derives a named child stream from one root seed, so adding a new consumer
never perturbs the draws seen by existing ones.

Two families of streams live here:

* **Stateful streams** (:meth:`DeterministicRNG.stream`): named
  ``random.Random`` generators. Draw values depend on *visit order*, so
  they suit consumers that tick on a fixed schedule (sensor noise per
  sample). They cannot be vectorized and they go wrong the moment two
  call sites share a stream or a coalescing engine skips a visit.
* **Keyed streams** (:meth:`DeterministicRNG.keyed` and the module-level
  ``keyed_*`` functions): stateless draws addressed by ``(stream key,
  integer index)``. Draw ``i`` is a splitmix64 finalizer mix of the key
  and index — pure 64-bit integer arithmetic, so the scalar Python path
  and the numpy vector path produce **bit-identical** floats for the
  same ``(key, index)``. This is what lets the columnar tenant
  population (:mod:`repro.datacenter.population`) reproduce per-object
  :class:`~repro.datacenter.tenants.DiurnalTenantDriver` traces exactly,
  and what makes draws immune to visit order and tick coalescing
  (``day-factor@<day>``, ``burst@<adjust#>`` — the same addressing
  pattern the fault injector uses for ``oom-victim@t#label``).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Union

import numpy as np

_MASK64 = (1 << 64) - 1
#: splitmix64 constants (Steele, Lea & Flood; same mix java.util uses)
_GAMMA = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
#: one draw carries 53 mantissa bits into [0, 1)
_U01_SCALE = 2.0**-53


def stream_key(seed: int, name: str) -> int:
    """The 64-bit key of stream ``name`` under ``seed`` (sha256-derived)."""
    digest = hashlib.sha256(f"{seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def splitmix64(value: int) -> int:
    """The splitmix64 finalizer over one 64-bit integer."""
    value &= _MASK64
    value = ((value ^ (value >> 30)) * _MIX1) & _MASK64
    value = ((value ^ (value >> 27)) * _MIX2) & _MASK64
    return value ^ (value >> 31)


def keyed_u64(key: int, index: int) -> int:
    """Draw ``index`` of the keyed stream ``key`` as a uint64."""
    return splitmix64((key + (index + 1) * _GAMMA) & _MASK64)


def keyed_u01(key: int, index: int) -> float:
    """Draw ``index`` as a float in [0, 1) (top 53 bits of the mix)."""
    return (keyed_u64(key, index) >> 11) * _U01_SCALE


def keyed_uniform(key: int, index: int, lo: float, hi: float) -> float:
    """Draw ``index`` as a uniform float in [lo, hi)."""
    return lo + (hi - lo) * keyed_u01(key, index)


def keyed_u01_array(keys: "np.ndarray", index: int) -> "np.ndarray":
    """Vector form of :func:`keyed_u01` over a uint64 key array.

    Pure uint64 wraparound arithmetic plus an exact int→float convert,
    so element ``i`` equals ``keyed_u01(int(keys[i]), index)`` bit for
    bit regardless of array length.
    """
    inc = ((index + 1) * _GAMMA) & _MASK64
    with np.errstate(over="ignore"):
        x = keys + np.uint64(inc)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(_MIX1)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(_MIX2)
        x = x ^ (x >> np.uint64(31))
    return (x >> np.uint64(11)).astype(np.float64) * _U01_SCALE


def keyed_u01_at(keys: "np.ndarray", indices: "np.ndarray") -> "np.ndarray":
    """Per-element-index vector form of :func:`keyed_u01`.

    Like :func:`keyed_u01_array` but each key draws at its *own* index:
    element ``i`` equals ``keyed_u01(int(keys[i]), int(indices[i]))`` bit
    for bit. This is what lets per-host draw cursors advance independently
    (hosts materialize and demote at different times) while staying on the
    same keyed streams the scalar subsystems read.
    """
    with np.errstate(over="ignore"):
        inc = (indices.astype(np.uint64) + np.uint64(1)) * np.uint64(_GAMMA)
        x = keys + inc
        x = (x ^ (x >> np.uint64(30))) * np.uint64(_MIX1)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(_MIX2)
        x = x ^ (x >> np.uint64(31))
    return (x >> np.uint64(11)).astype(np.float64) * _U01_SCALE


def keyed_gauss_at(
    keys: "np.ndarray", indices: "np.ndarray", sigma: float
) -> "np.ndarray":
    """Per-element-index vector form of :func:`keyed_gauss`.

    Box–Muller over sub-draws ``2*indices`` and ``2*indices + 1``, the
    same addressing as :func:`keyed_gauss_array`, so element ``i`` equals
    ``keyed_gauss(int(keys[i]), int(indices[i]), sigma)`` exactly.
    """
    with np.errstate(over="ignore"):
        two_i = indices.astype(np.uint64) * np.uint64(2)
        u1 = keyed_u01_at(keys, two_i)
        u2 = keyed_u01_at(keys, two_i + np.uint64(1))
    radius = np.sqrt(-2.0 * np.log1p(-u1))
    return sigma * (radius * np.cos((2.0 * np.pi) * u2))


def keyed_uniform_array(
    keys: "np.ndarray", index: int, lo: float, hi: float
) -> "np.ndarray":
    """Vector form of :func:`keyed_uniform` (same expression shape)."""
    return lo + (hi - lo) * keyed_u01_array(keys, index)


def keyed_gauss_array(keys: "np.ndarray", index: int, sigma: float) -> "np.ndarray":
    """Vector N(0, sigma) draws via Box–Muller over sub-draws 2i, 2i+1.

    The transcendental steps (log1p/sqrt/cos) run through numpy ufuncs in
    both the scalar and vector paths — :func:`keyed_gauss` wraps this on a
    one-element array — so the two paths cannot diverge by a libm ULP.
    """
    u1 = keyed_u01_array(keys, 2 * index)
    u2 = keyed_u01_array(keys, 2 * index + 1)
    radius = np.sqrt(-2.0 * np.log1p(-u1))
    return sigma * (radius * np.cos((2.0 * np.pi) * u2))


def keyed_gauss(key: int, index: int, sigma: float) -> float:
    """Scalar N(0, sigma) draw; bit-identical to :func:`keyed_gauss_array`."""
    out = keyed_gauss_array(np.array([key], dtype=np.uint64), index, sigma)
    return float(out[0])


class KeyedStream:
    """Stateless draws for one named stream: address by integer index.

    Unlike ``random.Random`` streams, a keyed stream has no cursor —
    ``u01(7)`` returns the same float whether it is the first call or the
    millionth, and the numpy batch helpers reproduce it exactly.
    """

    __slots__ = ("key",)

    def __init__(self, key: int):
        self.key = int(key) & _MASK64

    def u01(self, index: int) -> float:
        return keyed_u01(self.key, index)

    def uniform(self, index: int, lo: float, hi: float) -> float:
        return keyed_uniform(self.key, index, lo, hi)

    def gauss(self, index: int, sigma: float) -> float:
        return keyed_gauss(self.key, index, sigma)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KeyedStream(key={self.key:#018x})"


class DeterministicRNG:
    """A tree of named ``random.Random`` streams under one root seed.

    ``rng.stream("power-noise")`` always returns the same generator object
    for a given name, seeded from ``(root_seed, name)``; two
    :class:`DeterministicRNG` instances with equal seeds produce identical
    streams for identical names.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}
        self._keyed: Dict[str, KeyedStream] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the child stream called ``name``."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(f"{self.seed}:{name}".encode("utf-8")).digest()
        child = random.Random(int.from_bytes(digest[:8], "big"))
        self._streams[name] = child
        return child

    def keyed(self, name: str) -> KeyedStream:
        """Return the stateless keyed stream called ``name``.

        The key is derived exactly like :meth:`stream` seeds
        (``sha256(f"{seed}:{name}")``), so two trees with equal seeds
        agree on every keyed draw — including across process boundaries
        and between scalar and vectorized consumers.
        """
        existing = self._keyed.get(name)
        if existing is not None:
            return existing
        child = KeyedStream(stream_key(self.seed, name))
        self._keyed[name] = child
        return child

    def fork(self, name: str) -> "DeterministicRNG":
        """Derive an independent child RNG tree (e.g. one per server)."""
        digest = hashlib.sha256(f"{self.seed}/{name}".encode("utf-8")).digest()
        return DeterministicRNG(int.from_bytes(digest[:8], "big"))

    def uniform(self, name: str, lo: float, hi: float) -> float:
        """Convenience: one uniform draw from the named stream."""
        return self.stream(name).uniform(lo, hi)

    def gauss(self, name: str, mu: float, sigma: float) -> float:
        """Convenience: one Gaussian draw from the named stream."""
        return self.stream(name).gauss(mu, sigma)

    def hex_token(self, name: str, nbytes: int = 16) -> str:
        """A reproducible hex token (used for boot_id-style identifiers)."""
        return "".join(
            f"{self.stream(name).randrange(256):02x}" for _ in range(nbytes)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeterministicRNG(seed={self.seed})"
