"""Deterministic randomness shared by every simulated component.

Each subsystem that needs noise (sensor jitter, tenant burstiness, placement)
derives a named child stream from one root seed, so adding a new consumer
never perturbs the draws seen by existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class DeterministicRNG:
    """A tree of named ``random.Random`` streams under one root seed.

    ``rng.stream("power-noise")`` always returns the same generator object
    for a given name, seeded from ``(root_seed, name)``; two
    :class:`DeterministicRNG` instances with equal seeds produce identical
    streams for identical names.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the child stream called ``name``."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(f"{self.seed}:{name}".encode("utf-8")).digest()
        child = random.Random(int.from_bytes(digest[:8], "big"))
        self._streams[name] = child
        return child

    def fork(self, name: str) -> "DeterministicRNG":
        """Derive an independent child RNG tree (e.g. one per server)."""
        digest = hashlib.sha256(f"{self.seed}/{name}".encode("utf-8")).digest()
        return DeterministicRNG(int.from_bytes(digest[:8], "big"))

    def uniform(self, name: str, lo: float, hi: float) -> float:
        """Convenience: one uniform draw from the named stream."""
        return self.stream(name).uniform(lo, hi)

    def gauss(self, name: str, mu: float, sigma: float) -> float:
        """Convenience: one Gaussian draw from the named stream."""
        return self.stream(name).gauss(mu, sigma)

    def hex_token(self, name: str, nbytes: int = 16) -> str:
        """A reproducible hex token (used for boot_id-style identifiers)."""
        return "".join(
            f"{self.stream(name).randrange(256):02x}" for _ in range(nbytes)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeterministicRNG(seed={self.seed})"
