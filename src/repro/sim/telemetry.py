"""Zero-copy shared-memory telemetry plane for the parallel fleet engine.

The rack-sharded driver (:mod:`repro.sim.parallel`) originally shipped
every per-step trace row as pickled ``(index, watts)`` tuples over the
shard pipes — at fleet scale that pickling dominates the per-tick IPC
cost. This module replaces the row payload with a **double-buffered
shared-memory plane of float64 slots**: every shard worker writes its
hosts' wall-power values (and its attack observers' RAPL readings)
directly into preallocated global-index slots, and the driver folds the
row out of the buffer in global host order, so the pipe protocol shrinks
to small control frames.

Frame layout (all slots are native-endian float64)::

    bank 0: [ wall[0] ... wall[S-1] | obs[0] ... obs[C-1] ]
    bank 1: [ wall[0] ... wall[S-1] | obs[0] ... obs[C-1] ]

with ``S = total_servers`` and ``C = observer_capacity``. The banks
rotate per row-carrying barrier: the driver stamps each control frame
with the bank index, so a worker never overwrites a row the driver has
not consumed yet, even across coalesced steps. Two banks (a classic
double buffer) suffice for the one-barrier-per-tick pipe protocol; the
shared-memory control plane (:mod:`repro.sim.controlplane`) batches up
to ``epoch_ticks`` row-carrying ticks into one barrier, so the engine
sizes the plane with ``epoch_ticks + 1`` banks — every tick of an
epoch lands in its own bank and the driver folds them all after the
single reply.

Encoding: a wall slot holds the sampled watts (``0.0`` for a dark,
breaker-tripped server) or **NaN** for a crashed machine — the driver
turns NaN back into a trace *gap*, exactly like the serial sampler. An
observer slot holds the monitor's watt reading or NaN when the monitor
returned ``None`` (priming, fault backoff, implausible-sample discard).
Values round-trip bit-exactly (they are raw float64 slots), which is what
keeps the parallel traces bit-identical to serial.

Lifecycle: the driver :meth:`creates <TelemetryPlane.create>` the
segment and is the only party that ever unlinks it (in a ``finally``
during engine shutdown); workers :meth:`attach <TelemetryPlane.attach>`
by name and merely close their mapping on exit — see :meth:`attach` for
why the shared ``resource_tracker`` makes that sufficient.
"""

from __future__ import annotations

import math
import os
import secrets
from multiprocessing import shared_memory
from typing import List, Optional

from repro.errors import SimulationError

#: default bank count — a double buffer: one bank may be written while
#: the other is read (the engine raises this for batched plan epochs)
BANKS = 2

#: segment names are ``clkt-<driver pid>-<random hex>`` — the embedded
#: pid lets a later run prove the owner is gone before sweeping a
#: leftover segment (a SIGKILLed driver never reaches its unlink)
SEGMENT_PREFIX = "clkt"

_FLOAT_BYTES = 8

_SHM_DIR = "/dev/shm"


def _segment_owner_pid(name: str) -> Optional[int]:
    """Parse the creator pid out of a plane segment name (None: not ours)."""
    parts = name.split("-")
    if len(parts) != 3 or parts[0] != SEGMENT_PREFIX:
        return None
    try:
        return int(parts[1])
    except ValueError:
        return None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, owned by another uid
        return True
    return True


def sweep_stale_segments() -> List[str]:
    """Unlink plane segments whose creating driver is dead.

    An abnormally killed driver (SIGKILL, OOM) never reaches the
    ``finally``-unlink in ``ParallelFleetEngine.close``, leaking its
    segment in ``/dev/shm`` until reboot. Each engine start sweeps the
    name-prefixed leftovers of *dead* pids; segments whose embedded pid
    is still alive belong to a concurrent run and are never touched.
    Returns the names removed (for tests and logging).
    """
    if not os.path.isdir(_SHM_DIR):  # pragma: no cover - non-Linux
        return []
    removed: List[str] = []
    for name in os.listdir(_SHM_DIR):
        pid = _segment_owner_pid(name)
        if pid is None or pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(_SHM_DIR, name))
        except FileNotFoundError:  # pragma: no cover - lost the race
            continue
        removed.append(name)
    return removed


class TelemetryPlane:
    """A double-buffered shared-memory plane of float64 telemetry slots."""

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        total_servers: int,
        observer_capacity: int,
        owner: bool,
        banks: int = BANKS,
    ):
        self._shm = shm
        self.total_servers = total_servers
        self.observer_capacity = observer_capacity
        self.banks = banks
        self._owner = owner
        self._stride = total_servers + observer_capacity
        self._view = memoryview(shm.buf).cast("d")
        self._released = False

    # -- construction ---------------------------------------------------

    @classmethod
    def create(
        cls, total_servers: int, observer_capacity: int, banks: int = BANKS
    ) -> "TelemetryPlane":
        """Driver side: allocate the segment (``banks`` banks, NaN-filled)."""
        if total_servers < 1:
            raise SimulationError(
                f"telemetry plane needs at least one server slot: {total_servers}"
            )
        if observer_capacity < 0:
            raise SimulationError(
                f"observer capacity must be >= 0: {observer_capacity}"
            )
        if banks < BANKS:
            raise SimulationError(f"telemetry plane needs >= {BANKS} banks: {banks}")
        sweep_stale_segments()
        size = banks * (total_servers + observer_capacity) * _FLOAT_BYTES
        while True:
            name = f"{SEGMENT_PREFIX}-{os.getpid()}-{secrets.token_hex(4)}"
            try:
                shm = shared_memory.SharedMemory(name=name, create=True, size=size)
            except FileExistsError:  # pragma: no cover - 1-in-2^32 collision
                continue
            break
        plane = cls(shm, total_servers, observer_capacity, owner=True, banks=banks)
        nan = math.nan
        for slot in range(banks * plane._stride):
            plane._view[slot] = nan
        return plane

    @classmethod
    def attach(
        cls, name: str, total_servers: int, observer_capacity: int,
        banks: int = BANKS,
    ) -> "TelemetryPlane":
        """Worker side: attach to the driver's segment by name.

        Spawned shard workers share the driver's ``resource_tracker``
        process, so the attach-side registration CPython performs is a
        set-level duplicate of the driver's create-side one: the single
        unregister issued by the driver's :meth:`unlink` clears it, a
        worker exit triggers no teardown, and a driver that dies without
        cleanup still gets the segment reaped by the tracker at exit.
        Nothing to compensate for here — workers must NOT unregister,
        or they would strip the driver's registration from the shared
        tracker.
        """
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, total_servers, observer_capacity, owner=False, banks=banks)

    # -- geometry -------------------------------------------------------

    @property
    def name(self) -> str:
        """The segment name workers attach to."""
        return self._shm.name

    @property
    def segment_bytes(self) -> int:
        """Allocated size of the shared segment."""
        return self.banks * self._stride * _FLOAT_BYTES

    @property
    def row_bytes(self) -> int:
        """Payload bytes of one full wall-power row."""
        return self.total_servers * _FLOAT_BYTES

    def _wall_slot(self, bank: int, index: int) -> int:
        if not 0 <= bank < self.banks:
            raise SimulationError(f"bank out of range: {bank}")
        if not 0 <= index < self.total_servers:
            raise SimulationError(f"server index out of range: {index}")
        return bank * self._stride + index

    def _observer_slot(self, bank: int, slot: int) -> int:
        if not 0 <= bank < self.banks:
            raise SimulationError(f"bank out of range: {bank}")
        if not 0 <= slot < self.observer_capacity:
            raise SimulationError(f"observer slot out of range: {slot}")
        return bank * self._stride + self.total_servers + slot

    # -- slot access ----------------------------------------------------

    def write_wall(self, bank: int, index: int, watts: Optional[float]) -> None:
        """Write one server's sampled watts (``None`` = crashed, gap)."""
        self._view[self._wall_slot(bank, index)] = (
            math.nan if watts is None else watts
        )

    def read_wall(self, bank: int, index: int) -> Optional[float]:
        """Read one server's sampled watts (``None`` = crashed, gap)."""
        value = self._view[self._wall_slot(bank, index)]
        return None if math.isnan(value) else value

    def write_observer(self, bank: int, slot: int, watts: Optional[float]) -> None:
        """Write one attack observer's reading (``None`` = no sample)."""
        self._view[self._observer_slot(bank, slot)] = (
            math.nan if watts is None else watts
        )

    def read_observer(self, bank: int, slot: int) -> Optional[float]:
        """Read one attack observer's reading (``None`` = no sample)."""
        value = self._view[self._observer_slot(bank, slot)]
        return None if math.isnan(value) else value

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Release this process's mapping (does not destroy the segment)."""
        if self._released:
            return
        self._released = True
        self._view.release()
        self._shm.close()

    def unlink(self) -> None:
        """Driver side: destroy the segment (idempotent, swallows races).

        Owner-gated: worker mappings — including those of supervisor-
        respawned workers, which re-attach to the *live* segment by name
        — can never unlink it, and the driver's own double call is a
        no-op past the first.
        """
        self.close()
        if not self._owner:
            return
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
