"""Fixed-layout shared-memory control plane for the parallel fleet.

The rack-sharded driver (:mod:`repro.sim.parallel`) lock-steps its
workers at coalescing/fault barriers. With the telemetry plane carrying
the bulk payloads (:mod:`repro.sim.telemetry`), the remaining per-tick
cost is the control exchange itself: one pickled tuple over a ``Pipe``
per shard per barrier, paying pickling plus a kernel wakeup in each
direction. On fine-grained campaigns — 1 s power sampling, fault-dense
chaos schedules, attack bursts — the engine is *barrier-bound*, not
compute-bound.

This module moves the steady-state barrier path onto fixed-layout
shared-memory slots. The driver writes a request frame into its shard's
request block and rings a **doorbell** (bumps a sequence slot; workers
busy-poll with a spin-then-sleep backoff); the worker writes its reply
into the shard's reply block and bumps its own generation counter,
which doubles as the supervisor's heartbeat. No pickling, no syscalls
at steady state.

Only three request shapes are slot-encodable — and they are the entire
steady state:

- ``("plan", hint)`` — one float.
- ``("epoch", ticks)`` — up to ``epoch_ticks`` batched interior ticks,
  each ``(hint_or_None, step, bank, want_row)``. Plain ``commit`` and
  ``step`` frames (with no observer ids) ship as one-tick epochs.
- ``("begin", bank, want_row, ops)`` — with an empty op queue.

Everything else — attacker ops, monitor construction, checkpoint and
replay frames, meters, inspection, shutdown — is rare and variable-size
and stays on the pipe, which also carries worker errors (full pickled
traceback) and tracer drains (``PAYLOAD_PIPE`` status: the reply rides
the pipe while the request still used the slots).

Slot layout (all slots are 8 bytes; ``f`` = float64, ``i`` = int64),
per shard ``s`` with ``H_s`` hosts and a capacity of ``E`` epoch
ticks::

    request block (driver writes, worker reads), stride 4 + 4*E:
        [0] i  REQ_SEQ     doorbell: driver's frame counter
        [1] i  REQ_OP      1 = plan, 2 = epoch, 3 = begin
        [2] f/i REQ_A      plan: hint | epoch: tick count | begin: bank
        [3] i  REQ_B       begin: want_row
        [4 + 4*k ..]       epoch tick k: hint (f, NaN = commit-only),
                           step (f), bank (i), want_row (i)

    reply block (worker writes, driver reads), stride 8 + 3*H_s:
        [0] i  RSP_SEQ     generation counter == served REQ_SEQ
                           (the supervisor's heartbeat)
        [1] i  RSP_STATUS  0 = OK (slots), 1 = PAYLOAD_PIPE, 2 = ERROR
        [2] f  RSP_WAIT    worker's doorbell-wait seconds
        [3] i  RSP_CHANGED begin/epoch reply
        [4] i  RSP_SAFE    plan reply: breaker-knee guard
        [5] f  RSP_HORIZON plan reply: shard event horizon
        [6] i  RSP_NADD    plan reply: dark-set additions count
        [7] i  RSP_NREM    plan reply: dark-set removals count
        [8 ..]             added (i) x H_s | removed (i) x H_s |
                           demands (f) x H_s

Write ordering is payload-then-sequence on both sides: the doorbell /
generation slot is bumped only after the frame body is complete, so a
poller that observes the new sequence value observes a complete frame
(CPython's GIL orders the stores within the writer; x86-TSO and the
release/acquire behavior of aligned 8-byte slots keep the reader
consistent — the same discipline the telemetry plane's bank stamping
relies on).

The segment uses the telemetry plane's ``clkt-<pid>-<hex>`` naming, so
:func:`repro.sim.telemetry.sweep_stale_segments` reclaims control
segments of crashed drivers exactly like telemetry segments. The driver
creates and unlinks; workers attach and close (shared
``resource_tracker``, same rules as the telemetry plane).
"""

from __future__ import annotations

import math
import os
import secrets
from multiprocessing import shared_memory
from typing import Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.sim.telemetry import SEGMENT_PREFIX, sweep_stale_segments

_SLOT_BYTES = 8

_OP_PLAN = 1
_OP_EPOCH = 2
_OP_BEGIN = 3

_REQ_SEQ = 0
_REQ_OP = 1
_REQ_A = 2
_REQ_B = 3
_REQ_TICKS = 4
_TICK_SLOTS = 4

_RSP_SEQ = 0
_RSP_STATUS = 1
_RSP_WAIT = 2
_RSP_CHANGED = 3
_RSP_SAFE = 4
_RSP_HORIZON = 5
_RSP_NADD = 6
_RSP_NREM = 7
_RSP_ARRAYS = 8


class ControlPlane:
    """Per-shard request/reply slot blocks in one shared segment."""

    #: reply statuses
    OK = 0
    #: the request was served but the reply is a full pickled frame on
    #: the pipe (tracer drain attached)
    PAYLOAD_PIPE = 1
    #: the dispatch raised; the pickled ``("error", traceback)`` frame
    #: is on the pipe
    ERROR = 2

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        host_counts: Sequence[int],
        epoch_ticks: int,
        owner: bool,
    ):
        self._shm = shm
        self.host_counts = tuple(host_counts)
        self.epoch_ticks = epoch_ticks
        self._owner = owner
        self._released = False
        self._f = memoryview(shm.buf).cast("d")
        self._i = memoryview(shm.buf).cast("q")
        self._req_stride = _REQ_TICKS + _TICK_SLOTS * epoch_ticks
        self._req_base = [s * self._req_stride for s in range(len(self.host_counts))]
        total_req = self._req_stride * len(self.host_counts)
        self._rsp_base = []
        offset = total_req
        for hosts in self.host_counts:
            self._rsp_base.append(offset)
            offset += _RSP_ARRAYS + 3 * hosts
        self._slots = offset

    # -- construction ---------------------------------------------------

    @classmethod
    def create(
        cls, host_counts: Sequence[int], epoch_ticks: int
    ) -> "ControlPlane":
        """Driver side: allocate the segment, zero-filled (seq 0 = idle)."""
        if not host_counts or any(h < 1 for h in host_counts):
            raise SimulationError(
                f"control plane needs >= 1 host per shard: {host_counts!r}"
            )
        if epoch_ticks < 1:
            raise SimulationError(f"epoch_ticks must be >= 1: {epoch_ticks}")
        sweep_stale_segments()
        n_req = (_REQ_TICKS + _TICK_SLOTS * epoch_ticks) * len(host_counts)
        n_rsp = sum(_RSP_ARRAYS + 3 * h for h in host_counts)
        size = (n_req + n_rsp) * _SLOT_BYTES
        while True:
            name = f"{SEGMENT_PREFIX}-{os.getpid()}-{secrets.token_hex(4)}"
            try:
                shm = shared_memory.SharedMemory(name=name, create=True, size=size)
            except FileExistsError:  # pragma: no cover - 1-in-2^32 collision
                continue
            break
        shm.buf[:size] = bytes(size)
        return cls(shm, host_counts, epoch_ticks, owner=True)

    @classmethod
    def attach(
        cls, name: str, host_counts: Sequence[int], epoch_ticks: int
    ) -> "ControlPlane":
        """Worker side: attach by name (same tracker rules as telemetry)."""
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, host_counts, epoch_ticks, owner=False)

    # -- geometry -------------------------------------------------------

    @property
    def name(self) -> str:
        """The segment name workers attach to."""
        return self._shm.name

    @property
    def segment_bytes(self) -> int:
        """Allocated size of the shared segment."""
        return self._slots * _SLOT_BYTES

    # -- driver: request side -------------------------------------------

    def post(self, shard: int, msg: tuple) -> Optional[Tuple[int, int]]:
        """Encode one control frame into the shard's request slots.

        Returns ``(seq, payload_bytes)`` after ringing the doorbell, or
        ``None`` when the frame is not slot-encodable — an oversized
        epoch, a ``begin`` carrying attacker ops, or any verb outside
        the steady-state set — in which case the caller ships it pickled
        over the pipe (the slow path).
        """
        base = self._req_base[shard]
        verb = msg[0]
        if verb == "plan":
            self._f[base + _REQ_A] = msg[1]
            self._i[base + _REQ_OP] = _OP_PLAN
            nbytes = 3 * _SLOT_BYTES
        elif verb in ("epoch", "commit", "step"):
            if verb == "epoch":
                ticks = msg[1]
            else:
                # a bare commit/step (no observer ids) is a 1-tick epoch:
                # commit has no plan half (hint None), step fuses both
                step, bank, want_row, oids = msg[1], msg[2], msg[3], msg[4]
                if oids:
                    return None
                hint = step if verb == "step" else None
                ticks = ((hint, step, bank, want_row),)
            if len(ticks) > self.epoch_ticks:
                return None
            self._i[base + _REQ_A] = len(ticks)
            slot = base + _REQ_TICKS
            for hint, step, bank, want_row in ticks:
                self._f[slot] = math.nan if hint is None else hint
                self._f[slot + 1] = step
                self._i[slot + 2] = bank
                self._i[slot + 3] = 1 if want_row else 0
                slot += _TICK_SLOTS
            self._i[base + _REQ_OP] = _OP_EPOCH
            nbytes = (3 + _TICK_SLOTS * len(ticks)) * _SLOT_BYTES
        elif verb == "begin":
            bank, want_row, ops = msg[1], msg[2], msg[3]
            if ops:
                return None
            self._i[base + _REQ_A] = bank
            self._i[base + _REQ_B] = 1 if want_row else 0
            self._i[base + _REQ_OP] = _OP_BEGIN
            nbytes = 4 * _SLOT_BYTES
        else:
            return None
        seq = self._i[base + _REQ_SEQ] + 1
        self._i[base + _REQ_SEQ] = seq  # ring the doorbell last
        return seq, nbytes

    def req_seq(self, shard: int) -> int:
        """Current doorbell value (workers poll this)."""
        return self._i[self._req_base[shard] + _REQ_SEQ]

    # -- worker: request side -------------------------------------------

    def read_request(self, shard: int) -> tuple:
        """Decode the posted frame back into a classic control tuple."""
        base = self._req_base[shard]
        op = self._i[base + _REQ_OP]
        if op == _OP_PLAN:
            return ("plan", self._f[base + _REQ_A])
        if op == _OP_EPOCH:
            count = self._i[base + _REQ_A]
            ticks = []
            slot = base + _REQ_TICKS
            for _ in range(count):
                hint = self._f[slot]
                ticks.append((
                    None if math.isnan(hint) else hint,
                    self._f[slot + 1],
                    self._i[slot + 2],
                    bool(self._i[slot + 3]),
                ))
                slot += _TICK_SLOTS
            return ("epoch", tuple(ticks))
        if op == _OP_BEGIN:
            return (
                "begin",
                self._i[base + _REQ_A],
                bool(self._i[base + _REQ_B]),
                (),
            )
        raise SimulationError(f"corrupt control-plane request op: {op}")

    # -- worker: reply side ---------------------------------------------

    def write_reply(
        self, shard: int, seq: int, verb: str, result, wait_s: float
    ) -> None:
        """Encode a dispatch result into the reply slots (status OK)."""
        base = self._rsp_base[shard]
        hosts = self.host_counts[shard]
        if verb == "plan":
            added, removed, demands, safe, horizon = result
            self._i[base + _RSP_SAFE] = 1 if safe else 0
            self._f[base + _RSP_HORIZON] = horizon
            self._i[base + _RSP_NADD] = len(added)
            self._i[base + _RSP_NREM] = len(removed)
            slot = base + _RSP_ARRAYS
            for value in added:
                self._i[slot] = value
                slot += 1
            slot = base + _RSP_ARRAYS + hosts
            for value in removed:
                self._i[slot] = value
                slot += 1
            slot = base + _RSP_ARRAYS + 2 * hosts
            for value in demands:
                self._f[slot] = value
                slot += 1
        else:  # begin / epoch (commit and step travel as epochs)
            self._i[base + _RSP_CHANGED] = 1 if result else 0
        self._f[base + _RSP_WAIT] = wait_s
        self._i[base + _RSP_STATUS] = self.OK
        self._i[base + _RSP_SEQ] = seq  # generation bump last

    def write_status(
        self, shard: int, seq: int, status: int, wait_s: float
    ) -> None:
        """Publish a non-OK status (the reply body rides the pipe)."""
        base = self._rsp_base[shard]
        self._f[base + _RSP_WAIT] = wait_s
        self._i[base + _RSP_STATUS] = status
        self._i[base + _RSP_SEQ] = seq

    # -- driver: reply side ---------------------------------------------

    def rsp_seq(self, shard: int) -> int:
        """Worker's reply generation counter (the heartbeat the driver
        and supervisor poll)."""
        return self._i[self._rsp_base[shard] + _RSP_SEQ]

    def reply_status(self, shard: int) -> int:
        return self._i[self._rsp_base[shard] + _RSP_STATUS]

    def reply_wait_s(self, shard: int) -> float:
        """Worker-side doorbell wait for the frame just served."""
        return self._f[self._rsp_base[shard] + _RSP_WAIT]

    def read_reply(self, shard: int, verb: str) -> Tuple[object, int]:
        """Decode an OK reply; returns ``(result, payload_bytes)``."""
        base = self._rsp_base[shard]
        hosts = self.host_counts[shard]
        if verb == "plan":
            nadd = self._i[base + _RSP_NADD]
            nrem = self._i[base + _RSP_NREM]
            slot = base + _RSP_ARRAYS
            added = tuple(self._i[slot + k] for k in range(nadd))
            slot = base + _RSP_ARRAYS + hosts
            removed = tuple(self._i[slot + k] for k in range(nrem))
            slot = base + _RSP_ARRAYS + 2 * hosts
            demands = tuple(self._f[slot + k] for k in range(hosts))
            result = (
                added,
                removed,
                demands,
                bool(self._i[base + _RSP_SAFE]),
                self._f[base + _RSP_HORIZON],
            )
            nbytes = (_RSP_ARRAYS + nadd + nrem + hosts) * _SLOT_BYTES
        else:
            result = bool(self._i[base + _RSP_CHANGED])
            nbytes = 4 * _SLOT_BYTES
        return result, nbytes

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Release this process's mapping (does not destroy the segment)."""
        if self._released:
            return
        self._released = True
        self._f.release()
        self._i.release()
        self._shm.close()

    def unlink(self) -> None:
        """Driver side: destroy the segment (idempotent, owner-gated)."""
        self.close()
        if not self._owner:
            return
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
