"""Rack-sharded parallel fleet execution.

The serial :class:`~repro.datacenter.simulation.DatacenterSimulation`
loop walks every host per tick in one Python process; at fleet scale the
loop itself is the wall-time bottleneck (see ``sim/metrics.py`` subsystem
timings). Racks are the natural shard boundary: breakers aggregate power
only *within* a rack, tenants drive only their own host, and the only
cross-rack coupling per step is the coalescing horizon min-reduce and the
sampled aggregate trace. This module runs each rack group's kernels and
tenant drivers in its own ``multiprocessing`` spawn worker and lock-steps
the shards at exactly the barriers the serial driver already honors.

Driver/worker protocol (compact tuples over a ``Pipe`` per shard)::

    ("begin", want_row)        -> ("ok", (changed, row | None))
    ("plan", hint)             -> ("ok", (dark, demands, safe, horizon))
    ("commit", step, want_row) -> ("ok", (changed, row | None))
    ("step", step, want_row)   -> ("ok", (changed, row | None))   # no coalescing
    ("watts",)                 -> ("ok", ((index, watts), ...))
    ("state",)                 -> ("ok", {"breakers": ..., "stats": ...})
    ("close",)                 -> worker exits

``row`` is ``((global_index, watts | None), ...)`` — one trace sample per
shard host, ``None`` marking a crashed machine's gap. A coalesced step is
two round trips (plan, commit); an uncoalesced step is one.

Determinism rules (the golden-trace test pins all of them):

1. Shard workers rebuild their hosts through the same
   :func:`repro.runtime.cloud.build_cloud_host` path the serial fleet
   uses, forking the fleet rng by *global* index — identical seeds yield
   bit-identical kernels no matter which process builds them.
2. The driver's clock performs the same ``+=`` float operations as the
   serial clock, and every shard clock replays them too, so shard-local
   horizons (``now + boundary``) are bitwise equal to serial ones.
3. :meth:`FaultSchedule.partition` routes host/rack events to their
   owning shard and clock-jitter events to the driver (jitter only moves
   *recorded* timestamps, which only the driver writes); per-event rng
   streams are keyed on global indices, so partitioning changes no draw.
4. The driver merges per-sample rows in global host order, so the
   aggregate trace folds watts left-to-right exactly as the serial
   sampler does — float addition order is part of the contract.

When serial wins: small fleets (a rack or two) or short runs, where the
per-step pickling/IPC round trip outweighs the per-host loop; and any
workflow needing ``on_tick`` callbacks or direct host access mid-run,
which cannot observe worker-held state. See ``docs/parallel.md``.
"""

from __future__ import annotations

import math
import multiprocessing
import traceback
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock
from repro.sim.faults import FaultInjector, FaultSchedule, FaultStats, JitterModel
from repro.sim.metrics import WallTimer
from repro.sim.rng import DeterministicRNG

_EPS = 1e-9

#: seconds to wait for a spawn worker to finish building its shard
_STARTUP_TIMEOUT_S = 120.0


@dataclass(frozen=True)
class RackShardSpec:
    """One rack as shipped to a shard worker."""

    rack_index: int
    name: str
    breaker_name: str
    rated_watts: float
    host_indices: Tuple[int, ...]


@dataclass(frozen=True)
class ShardSpec:
    """Everything a worker needs to rebuild its slice of the fleet.

    Only picklable value state crosses the process boundary; kernels,
    engines, and tenant drivers are *reconstructed* in the worker from
    the same seeds, which is what makes them bit-identical to serial.
    """

    profile: object  # ProviderProfile (picklable frozen dataclass)
    seed: int
    start_time: float
    host_indices: Tuple[int, ...]
    racks: Tuple[RackShardSpec, ...]
    tenant_profile: object  # Optional[DiurnalProfile]
    power_config: object  # ServerPowerConfig
    breaker_knee_ratio: float
    fault_schedule: Optional[FaultSchedule]
    fault_seed: int


@dataclass(frozen=True)
class BreakerSnapshot:
    """Driver-side view of one worker-held rack breaker."""

    rack_index: int
    name: str
    tripped: bool
    tripped_at: float
    trip_count: int


class _ShardRuntime:
    """Worker-side state: the shard's hosts, racks, tenants, and faults.

    Mirrors the serial loop body exactly, but only over this shard's
    hosts; all indices in messages are fleet-global.
    """

    def __init__(self, spec: ShardSpec):
        from repro.datacenter.breaker import CircuitBreaker
        from repro.datacenter.tenants import DiurnalTenantDriver
        from repro.datacenter.topology import Rack, WallPowerCache
        from repro.runtime.cloud import build_cloud_host

        self.spec = spec
        self.clock = VirtualClock(start=spec.start_time)
        root = DeterministicRNG(spec.seed)
        self.hosts = {
            i: build_cloud_host(spec.profile, self.clock, root, i)
            for i in spec.host_indices
        }
        self.cache = WallPowerCache(spec.power_config)
        self.racks = []
        for rs in spec.racks:
            self.racks.append(
                Rack(
                    name=rs.name,
                    kernels=[self.hosts[i].kernel for i in rs.host_indices],
                    breaker=CircuitBreaker(
                        name=rs.breaker_name, rated_watts=rs.rated_watts
                    ),
                    power_config=spec.power_config,
                    power_cache=self.cache,
                )
            )
        self.tenants = {
            i: DiurnalTenantDriver(
                kernel=self.hosts[i].kernel,
                rng=root.fork(f"tenant-{i}"),
                profile=spec.tenant_profile,
                engine=self.hosts[i].engine,
            )
            for i in spec.host_indices
        }
        self.injector: Optional[FaultInjector] = None
        if spec.fault_schedule is not None:
            self.injector = FaultInjector(
                spec.fault_schedule,
                DeterministicRNG(spec.fault_seed),
                kernels=[self.hosts[i].kernel for i in spec.host_indices],
                engines=[self.hosts[i].engine for i in spec.host_indices],
                racks=self.racks,
                kernel_labels=spec.host_indices,
            )
        self._last_dark: set = set()

    # -- serial-loop mirrors --------------------------------------------

    def dark(self) -> set:
        """Global indices of this shard's dark (tripped or crashed) hosts."""
        dark = set()
        for rs, rack in zip(self.spec.racks, self.racks):
            if rack.breaker.tripped:
                dark.update(rs.host_indices)
        if self.injector is not None:
            for local in self.injector.crashed_now():
                dark.add(self.spec.host_indices[local])
        return dark

    def _crashed_kernel_ids(self) -> frozenset:
        if self.injector is None:
            return frozenset()
        return frozenset(
            id(self.hosts[self.spec.host_indices[local]].kernel)
            for local in self.injector.crashed_now()
        )

    def _breakers_safe(self) -> bool:
        crashed = self._crashed_kernel_ids()
        for rack in self.racks:
            if rack.breaker.tripped:
                continue
            if rack.wall_power(crashed) / rack.breaker.rated_watts > (
                self.spec.breaker_knee_ratio
            ):
                return False
        return True

    def begin(self, want_row: bool):
        """Run-start barrier: apply due faults, report the t=0 row."""
        changed = self.injector is not None and self.injector.advance(self.clock.now)
        return (changed, self.sample_row() if want_row else None)

    def plan(self, step_hint: float, coalesce: bool = True):
        """The pre-advance half of one serial loop iteration."""
        now = self.clock.now
        dark = self.dark()
        self._last_dark = dark
        for i in self.spec.host_indices:
            if i not in dark:
                self.tenants[i].step(now, step_hint)
        if not coalesce:
            return None
        demands = tuple(
            (i, 0.0 if i in dark else self.hosts[i].kernel.demand_fingerprint())
            for i in self.spec.host_indices
        )
        horizon = math.inf
        for i in self.spec.host_indices:
            if i not in dark:
                horizon = min(horizon, self.tenants[i].next_event_time(now))
                horizon = min(
                    horizon, now + self.hosts[i].kernel.next_phase_boundary_s()
                )
        if self.injector is not None:
            horizon = min(horizon, self.injector.next_barrier(now))
        return (tuple(dark), demands, self._breakers_safe(), horizon)

    def commit(self, step: float, want_row: bool):
        """The post-plan half: advance, tick, feed breakers, apply faults."""
        dark = self._last_dark
        self.clock.advance(step)
        for i in self.spec.host_indices:
            if i not in dark:
                self.hosts[i].kernel.tick(step)
        crashed = self._crashed_kernel_ids()
        now = self.clock.now
        for rack in self.racks:
            rack.observe(step, now, crashed)
        changed = self.injector is not None and self.injector.advance(now)
        return (changed, self.sample_row() if want_row else None)

    def sample_row(self) -> tuple:
        """Per-host trace values right now (``None`` = crashed, gap)."""
        crashed: set = set()
        if self.injector is not None:
            crashed = {
                self.spec.host_indices[local]
                for local in self.injector.crashed_now()
            }
        dark = self.dark()
        row = []
        for i in self.spec.host_indices:
            if i in crashed:
                row.append((i, None))
            else:
                watts = 0.0 if i in dark else self.cache.watts(self.hosts[i].kernel)
                row.append((i, watts))
        return tuple(row)

    def watts(self) -> tuple:
        return tuple(
            (i, self.cache.watts(self.hosts[i].kernel))
            for i in self.spec.host_indices
        )

    def state(self) -> dict:
        breakers = tuple(
            (
                rs.rack_index,
                rack.breaker.name,
                rack.breaker.tripped,
                rack.breaker.tripped_at,
                rack.breaker.trip_count,
            )
            for rs, rack in zip(self.spec.racks, self.racks)
        )
        stats = self.injector.stats.as_dict() if self.injector is not None else {}
        return {"breakers": breakers, "stats": stats}

    def dispatch(self, msg: tuple):
        cmd = msg[0]
        if cmd == "plan":
            return self.plan(msg[1])
        if cmd == "commit":
            return self.commit(msg[1], msg[2])
        if cmd == "step":
            self.plan(msg[1], coalesce=False)
            return self.commit(msg[1], msg[2])
        if cmd == "begin":
            return self.begin(msg[1])
        if cmd == "watts":
            return self.watts()
        if cmd == "state":
            return self.state()
        raise SimulationError(f"unknown shard command: {cmd!r}")


def _shard_worker_main(spec: ShardSpec, conn) -> None:
    """Worker entry point: build the shard, then serve the command loop."""
    try:
        runtime = _ShardRuntime(spec)
    except Exception:
        try:
            conn.send(("error", traceback.format_exc()))
        finally:
            return
    conn.send(("ready",))
    while True:
        try:
            msg = conn.recv()
        except EOFError:
            return
        if msg[0] == "close":
            return
        try:
            reply = ("ok", runtime.dispatch(msg))
        except Exception:
            reply = ("error", traceback.format_exc())
        conn.send(reply)


class _DriverFaultReplayer:
    """The driver's slice of a partitioned fault schedule.

    Holds the clock-jitter events (they displace recorded trace
    timestamps, and only the driver writes traces) and replays them with
    the same ``sample-jitter`` stream the serial injector would use, plus
    the ``injected:`` counters for the events it owns.
    """

    def __init__(self, schedule: FaultSchedule, seed: int):
        self.schedule = schedule
        self.stats = FaultStats()
        self.jitter = JitterModel(DeterministicRNG(seed), self.stats)
        self._cursor = 0

    def advance(self, now: float) -> bool:
        events = self.schedule.events
        changed = False
        while self._cursor < len(events) and events[self._cursor].at <= now + _EPS:
            event = events[self._cursor]
            self.stats.count(f"injected:{event.kind.value}")
            self.jitter.arm(event)
            self._cursor += 1
            changed = True
        return changed

    def next_barrier(self, now: float) -> float:
        barrier = math.inf
        events = self.schedule.events
        if self._cursor < len(events):
            barrier = events[self._cursor].at
        if now < self.jitter.until:
            barrier = min(barrier, self.jitter.until)
        return max(barrier, now)


class ParallelFleetEngine:
    """Drives a fleet simulation across rack-sharded worker processes.

    Created by ``DatacenterSimulation.run(parallel=N)`` on a *fresh*
    simulation (no ticks executed, no samples recorded, no launched
    instances). The driver keeps the traces, metrics, sampling grid,
    stability tracker, and jitter replay; everything per-host moves to
    the workers. Results are bit-identical to the serial path on equal
    seeds — the golden-trace test in ``tests/sim/test_parallel.py``
    enforces it sample-for-sample.
    """

    def __init__(self, sim, workers: int):
        if workers < 1:
            raise SimulationError(f"parallel needs at least one worker: {workers}")
        self.sim = sim
        self._validate_fresh(sim)
        self.total_servers = len(sim.cloud.hosts)
        self.clock = VirtualClock(start=sim.now)
        self._closed = False

        rack_specs = [
            RackShardSpec(
                rack_index=r,
                name=rack.name,
                breaker_name=rack.breaker.name,
                rated_watts=rack.breaker.rated_watts,
                host_indices=tuple(
                    sim._kernel_index[id(k)] for k in rack.kernels
                ),
            )
            for r, rack in enumerate(sim.racks)
        ]
        n = min(workers, len(rack_specs))
        counts = [
            len(rack_specs) // n + (1 if i < len(rack_specs) % n else 0)
            for i in range(n)
        ]
        groups: List[List[RackShardSpec]] = []
        cursor = 0
        for count in counts:
            groups.append(rack_specs[cursor : cursor + count])
            cursor += count
        shard_hosts = [
            [i for rs in group for i in rs.host_indices] for group in groups
        ]

        self.faults: Optional[_DriverFaultReplayer] = None
        shard_schedules: List[Optional[FaultSchedule]] = [None] * n
        fault_seed = 0
        if sim.fault_injector is not None:
            fault_seed = sim.fault_injector.rng.seed
            shard_schedules, driver_schedule = sim.fault_injector.schedule.partition(
                shard_hosts,
                [[rs.rack_index for rs in group] for group in groups],
                self.total_servers,
                len(rack_specs),
            )
            self.faults = _DriverFaultReplayer(driver_schedule, fault_seed)

        specs = [
            ShardSpec(
                profile=sim.profile,
                seed=sim.seed,
                start_time=sim._start_time,
                host_indices=tuple(shard_hosts[i]),
                racks=tuple(groups[i]),
                tenant_profile=sim.tenant_profile,
                power_config=sim.power_config,
                breaker_knee_ratio=sim.breaker_knee_ratio,
                fault_schedule=shard_schedules[i],
                fault_seed=fault_seed,
            )
            for i in range(n)
        ]

        try:
            ctx = multiprocessing.get_context("spawn")
        except ValueError as exc:  # pragma: no cover - platform-specific
            raise SimulationError(
                "parallel fleet execution needs the 'spawn' process start"
                " method, which this platform does not provide; run with"
                " parallel=0"
            ) from exc
        self.procs = []
        self.conns = []
        try:
            for spec in specs:
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=_shard_worker_main, args=(spec, child), daemon=True
                )
                proc.start()
                child.close()
                self.procs.append(proc)
                self.conns.append(parent)
            for conn in self.conns:
                if not conn.poll(_STARTUP_TIMEOUT_S):
                    raise SimulationError(
                        "shard worker did not come up within"
                        f" {_STARTUP_TIMEOUT_S:.0f}s"
                    )
                msg = conn.recv()
                if msg[0] != "ready":
                    raise SimulationError(f"shard worker failed to build:\n{msg[1]}")
        except BaseException:
            self.close()
            raise

    @staticmethod
    def _validate_fresh(sim) -> None:
        if (
            sim.metrics.ticks
            or len(sim.aggregate_trace)
            or sim.now != sim._start_time
        ):
            raise SimulationError(
                "the first parallel run must start from a fresh simulation:"
                " shard workers rebuild the fleet from seeds and cannot"
                " adopt mid-run serial state"
            )
        if sim.metrics.subsystem_timings is not None:
            raise SimulationError(
                "subsystem timings profile in-process kernels; they cannot"
                " observe shard workers (disable them or run serially)"
            )
        if sim.cloud._instances:
            raise SimulationError(
                "launched instances hold driver-side host references;"
                " the parallel fleet cannot carry them (launch none before"
                " a parallel run, or run serially)"
            )
        allowed = set()
        if sim.fault_injector is not None:
            allowed.add(sim.fault_injector.next_barrier)
        if any(source not in allowed for source in sim.horizon_sources):
            raise SimulationError(
                "extra horizon sources (attack strategies) observe"
                " driver-side hosts; the parallel fleet does not support"
                " them yet — run serially"
            )

    # ------------------------------------------------------------------

    def _broadcast(self, msg: tuple) -> list:
        if self._closed:
            raise SimulationError("parallel engine is closed")
        for conn in self.conns:
            conn.send(msg)
        out = []
        for conn in self.conns:
            try:
                reply = conn.recv()
            except (EOFError, OSError) as exc:
                raise SimulationError(
                    f"shard worker died mid-protocol: {exc}"
                ) from exc
            if reply[0] == "error":
                raise SimulationError(f"shard worker failed:\n{reply[1]}")
            out.append(reply[1])
        return out

    def _due_times(self, now: float) -> list:
        """Sample times due at or before ``now`` (the serial catch-up rule)."""
        sim = self.sim
        due = []
        count = sim._sample_count
        while sim._sample_origin + count * sim.sample_interval_s <= now + _EPS:
            due.append(sim._sample_origin + count * sim.sample_interval_s)
            count += 1
        return due

    @staticmethod
    def _merge_rows(parts) -> list:
        rows = []
        for part in parts:
            if part:
                rows.extend(part)
        rows.sort(key=lambda r: r[0])
        return rows

    def _merge_plans(self, plans) -> tuple:
        dark: set = set()
        demands = [0.0] * self.total_servers
        safe = True
        horizon = math.inf
        for shard_dark, shard_demands, shard_safe, shard_horizon in plans:
            dark.update(shard_dark)
            for i, value in shard_demands:
                demands[i] = value
            safe = safe and shard_safe
            horizon = min(horizon, shard_horizon)
        return dark, tuple(demands), safe, horizon

    def _record_samples(self, due: list, rows: list) -> None:
        """Write one trace sample per due time, exactly like ``_sample``."""
        sim = self.sim
        for when in due:
            t = when
            if self.faults is not None:
                last = (
                    sim.aggregate_trace.times[-1]
                    if sim.aggregate_trace.times
                    else 0.0
                )
                t = self.faults.jitter.jittered_time(
                    when, sim.sample_interval_s, floor=last
                )
            total = 0.0
            for i, watts in rows:
                if watts is None:
                    sim.server_traces[i].note_gap(t)
                    continue
                sim.server_traces[i].append(t, watts)
                total += watts
            sim.aggregate_trace.append(t, total)
            sim.metrics.samples += 1
            sim._sample_count += 1

    def run(self, seconds: float, dt: float = 1.0, coalesce: bool = False) -> None:
        """Advance the sharded fleet (mirrors the serial ``run`` loop 1:1)."""
        if seconds <= 0:
            raise SimulationError(f"run needs positive duration: {seconds}")
        sim = self.sim
        engine = sim.fastforward
        with WallTimer(sim.metrics):
            due = self._due_times(self.clock.now)
            replies = self._broadcast(("begin", bool(due)))
            changed = any(shard_changed for shard_changed, _ in replies)
            if self.faults is not None and self.faults.advance(self.clock.now):
                changed = True
            if changed:
                engine.stability.reset()
            if due:
                self._record_samples(
                    due, self._merge_rows(row for _, row in replies)
                )
            remaining = seconds
            while remaining > _EPS:
                step = min(dt, remaining)
                if coalesce:
                    plans = self._broadcast(("plan", step))
                    dark, demands, safe, horizon = self._merge_plans(plans)
                    stable = (
                        engine.stability.observe((demands, frozenset(dark)))
                        and safe
                    )
                    horizon = min(horizon, sim.next_sample_time)
                    if self.faults is not None:
                        horizon = min(
                            horizon, self.faults.next_barrier(self.clock.now)
                        )
                    step = engine.plan_step(
                        now=self.clock.now,
                        remaining=remaining,
                        base_dt=dt,
                        horizon=horizon,
                        stable=stable,
                    )
                    self.clock.advance(step)
                    due = self._due_times(self.clock.now)
                    replies = self._broadcast(("commit", step, bool(due)))
                else:
                    self.clock.advance(step)
                    due = self._due_times(self.clock.now)
                    replies = self._broadcast(("step", step, bool(due)))
                changed = any(shard_changed for shard_changed, _ in replies)
                if self.faults is not None and self.faults.advance(self.clock.now):
                    changed = True
                if changed:
                    engine.stability.reset()
                if due:
                    self._record_samples(
                        due, self._merge_rows(row for _, row in replies)
                    )
                sim.metrics.record_tick(step, dt)
                remaining -= step

    # ------------------------------------------------------------------

    def server_watts(self) -> Dict[int, float]:
        """Current wall watts per global server index (one round trip)."""
        watts: Dict[int, float] = {}
        for part in self._broadcast(("watts",)):
            for i, value in part:
                watts[i] = value
        return watts

    def breaker_states(self) -> List[BreakerSnapshot]:
        """Rack breaker snapshots in global rack order (one round trip)."""
        snapshots = []
        for part in self._broadcast(("state",)):
            for rack_index, name, tripped, tripped_at, trips in part["breakers"]:
                snapshots.append(
                    BreakerSnapshot(
                        rack_index=rack_index,
                        name=name,
                        tripped=tripped,
                        tripped_at=tripped_at,
                        trip_count=trips,
                    )
                )
        snapshots.sort(key=lambda snapshot: snapshot.rack_index)
        return snapshots

    def fault_stats(self) -> Dict[str, int]:
        """Merged fault counters: every shard's plus the driver's own."""
        merged: Dict[str, int] = {}
        for part in self._broadcast(("state",)):
            for key, value in part["stats"].items():
                merged[key] = merged.get(key, 0) + value
        if self.faults is not None:
            for key, value in self.faults.stats.as_dict().items():
                merged[key] = merged.get(key, 0) + value
        return dict(sorted(merged.items()))

    def close(self) -> None:
        """Shut the workers down; the engine is unusable afterwards."""
        if self._closed:
            return
        self._closed = True
        for conn in self.conns:
            try:
                conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self.procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
        for conn in self.conns:
            conn.close()
