"""Rack-sharded parallel fleet execution.

The serial :class:`~repro.datacenter.simulation.DatacenterSimulation`
loop walks every host per tick in one Python process; at fleet scale the
loop itself is the wall-time bottleneck (see ``sim/metrics.py`` subsystem
timings). Racks are the natural shard boundary: breakers aggregate power
only *within* a rack, tenants drive only their own host, and the only
cross-rack coupling per step is the coalescing horizon min-reduce and the
sampled aggregate trace. This module runs each rack group's kernels and
tenant drivers in its own ``multiprocessing`` spawn worker and lock-steps
the shards at exactly the barriers the serial driver already honors.

Bulk telemetry — per-sample wall-power rows and attacker-monitor
readings — travels through a :class:`repro.sim.telemetry.TelemetryPlane`
(a double-buffered ``multiprocessing.shared_memory`` segment of float64
slots written at global indices), so the pipe protocol is small pickled
control frames only. The driver stamps each shm-carrying frame with the
bank index; banks alternate so a worker never overwrites a row the
driver has not consumed.

Driver/worker control frames (logical tuples; ``ops`` are queued
attacker ``exec``/``reap`` operations, ``oids`` are observer ids of
shard-resident attack monitors to sample)::

    ("begin", bank, want_row, ops)         -> ("ok", changed)
    ("plan", hint)                         -> ("ok", (dark+, dark-, demands,
                                                      safe, horizon))
    ("commit", step, bank, want_row, oids) -> ("ok", changed)
    ("step", step, bank, want_row, oids)   -> ("ok", changed)   # no coalescing
    ("epoch", ((hint|None, step, bank,     -> ("ok", changed)   # batched ticks:
               want_row), ...))                  plan(hint)+commit per entry
    ("watts", bank)                        -> ("ok", None)
    ("state",)                             -> ("ok", {"breakers":..., "stats":...})
    ("meters", ops)                        -> ("ok", {iid: (cpu_ns, cpu_ns0)})
    ("monitor", oid, slot, iid, factory)   -> ("ok", available)
    ("degradation", oid)                   -> ("ok", {...})
    ("sample", bank, oids, ops)            -> ("ok", None)
    ("release", oid)                       -> ("ok", None)  # free the slot
    ("checkpoint", seq, dir)               -> ("ok", (bytes, wall_s))
    ("replay", frames)                     -> ("ok", count)  # respawn catch-up
    ("hang", seconds)                      -> ("ok", None)   # test hook: stall
    ("crash",)                             -> no reply; worker exits (test hook)
    ("close",)                             -> worker exits

Frames travel over one of two planes. Under ``control_plane="shm"``
(the default) the steady-state verbs — ``plan``, ``epoch``, bare
``commit``/``step`` (encoded as one-tick epochs), and op-less ``begin``
— are written into fixed-layout shared-memory slots with a doorbell
sequence counter (:mod:`repro.sim.controlplane`): zero pickling, zero
syscalls per barrier. Everything else rides the ``Pipe`` slow path as
pickled tuples, as do worker errors and tracer-drain replies (the
request stays on the slots; the reply's status slot says the payload is
on the pipe). ``control_plane="pipe"`` is the escape hatch that keeps
every frame on the pipe. The supervisor's frame log always records the
*logical* tuples, so replay-after-respawn reproduces shm-carried frames
over the pipe verbatim.

Batched plan epochs cut steady-state round trips up to ``epoch_ticks``×:
when coalescing plans ``k`` consecutive ticks with no cross-shard event
— the merged plan horizon is the nearest shard event, every breaker is
below its knee, no sample row is due beyond per-tick banks, no
checkpoint boundary or armed observation intervenes — the driver runs
the serial planning loop locally (the fingerprint, dark set, and safety
verdict are constant over the window by the same invariant serial
coalescing relies on) and ships all ``k`` ticks as one ``epoch`` frame;
workers execute plan+commit per entry, bit-identical to ``k`` separate
barriers. Without coalescing, fixed base-dt ticks batch the same way.
The telemetry plane carries ``epoch_ticks + 1`` banks so every
row-carrying tick of an epoch lands in its own bank.

With tracing enabled (``DatacenterSimulation.enable_tracing`` before the
first parallel run), every ``("ok", ...)`` reply grows a third element:
the worker's drained span-tracer ring buffer. Workers record
``shard.plan``/``shard.step`` spans and fault markers against the
lock-stepped virtual clock; the driver ingests each flush into its own
tracer, so the merged timeline is globally clock-aligned without any
extra frames (see ``repro.obs`` and ``docs/observability.md``).

``plan`` replies carry the shard's *dark-set delta* (indices newly dark /
newly lit since the last plan) and its demand fingerprints as bare floats
in host order — the driver knows each shard's host list, so no indices
cross the pipe. Row payloads never do either: ``want_row`` makes the
worker write its hosts' sampled watts into the stamped bank (``NaN`` =
crashed machine = trace gap), and the driver folds the row out of the
plane in global host order, so float sums stay bit-identical to serial.

Attack support: instances launched before the first parallel run are
replayed inside the owning shard from the cloud's launch log (the cloud
is then frozen), attacker monitors live *in the shard* next to the host
whose RAPL they read (``("monitor", ...)`` registers one), and the driver
pulls their readings through observer slots of the plane — piggybacked on
the final commit of a run when armed, or via an explicit ``("sample")``
frame. Strategy event horizons stay driver-side, wrapped in
:class:`repro.sim.fastforward.DriverHorizon` so the driver can fold them
into the merged coalescing horizon.

Determinism rules (the golden-trace tests pin all of them):

1. Shard workers rebuild their hosts through the same
   :func:`repro.runtime.cloud.build_cloud_host` path the serial fleet
   uses, forking the fleet rng by *global* index — identical seeds yield
   bit-identical kernels no matter which process builds them — and then
   replay the cloud's launch/terminate log in order, so container ids,
   core allocations, and billing baselines match the serial cloud.
2. The driver's clock performs the same ``+=`` float operations as the
   serial clock, and every shard clock replays them too, so shard-local
   horizons (``now + boundary``) are bitwise equal to serial ones.
3. :meth:`FaultSchedule.partition` routes host/rack events to their
   owning shard and clock-jitter events to the driver (jitter only moves
   *recorded* timestamps, which only the driver writes); per-event rng
   streams are keyed on global indices, so partitioning changes no draw.
4. The driver folds per-sample rows in global host order, so the
   aggregate trace folds watts left-to-right exactly as the serial
   sampler does — float addition order is part of the contract.
5. Queued attacker ops apply at the shard's next ``begin`` (or
   ``sample``/``meters``) barrier, before any tick — the same ordering
   as the serial call-then-``run()`` sequence — and monitors sample at
   exactly the virtual times the serial strategy would call them.

When serial wins: small fleets (a rack or two) or short runs, where the
per-step control round trip outweighs the per-host loop; and any
workflow needing ``on_tick`` callbacks or direct host access mid-run,
which cannot observe worker-held state. See ``docs/parallel.md``.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
import time
import traceback
from bisect import insort
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.obs.tracer import SpanTracer
from repro.sim.clock import VirtualClock
from repro.sim.controlplane import ControlPlane
from repro.sim.faults import FaultInjector, FaultSchedule, FaultStats, JitterModel
from repro.sim.fastforward import fold_driver_horizons
from repro.sim.metrics import IpcMetrics, WallTimer
from repro.sim.resilience import (
    MANIFEST_VERSION,
    SNAPSHOT_VERSION,
    ResilienceMetrics,
    atomic_write,
    load_manifest,
    manifest_path,
    read_snapshot,
    shard_snapshot_path,
)
from repro.sim.rng import DeterministicRNG
from repro.sim.telemetry import TelemetryPlane

_EPS = 1e-9

#: seconds to wait for a spawn worker to finish building its shard
_STARTUP_TIMEOUT_S = 120.0

#: poll granularity while waiting on a shard reply (liveness checks)
_POLL_S = 0.1

#: barrier reply timeout when no ResilienceConfig overrides it — long
#: enough for any honest coalesced step, short enough to ever return
_DEFAULT_BARRIER_TIMEOUT_S = 600.0

#: frames never recorded in the supervisor's replay log: lifecycle and
#: recovery traffic (replaying them would recurse), plus the test hooks
_UNLOGGED_FRAMES = frozenset({"crash", "close", "checkpoint", "replay", "hang"})

#: ticks batched per epoch frame under the shm control plane (engine
#: default; ``ParallelFleetEngine(epoch_ticks=...)`` overrides it)
_DEFAULT_EPOCH_TICKS = 8

#: doorbell busy-poll: spin this many iterations before backing off to
#: short sleeps — a barrier turnaround at steady state lands within the
#: spin window, so the hot path never syscalls
_DOORBELL_SPINS = 400

#: first backoff sleep once the spin window is exhausted; each further
#: nap doubles it up to the cap, so a waiter whose counterpart is busy
#: (an epoch of compute, an idle stretch between barriers) stops waking
#: — and, on an oversubscribed box, stops *preempting* — the process it
#: is waiting on. Fast replies still land in the spin window; the cap
#: bounds the added latency of a slow one to a single sleep interval.
_DOORBELL_SLEEP_S = 50e-6
_DOORBELL_SLEEP_MAX_S = 2e-3

#: liveness/timeout checks every this many backoff sleeps (worst-case
#: detection granularity: this many cap-length naps)
_DOORBELL_CHECK_EVERY = 50


class _ShardFailure(Exception):
    """Internal: one shard died or hung mid-protocol (driver side)."""

    def __init__(self, kind: str, detail: str, cause: Optional[BaseException] = None):
        super().__init__(f"{kind}: {detail}")
        self.kind = kind  # "died" | "hung"
        self.detail = detail
        self.cause = cause


def _dumps(obj) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def _recv_frame(conn) -> Tuple[tuple, int]:
    """Receive one pickled control frame; returns ``(frame, bytes)``.

    The single choke point for every driver-side pipe read, so byte
    accounting is uniform and a half-written frame from a dying worker
    surfaces as a descriptive :class:`SimulationError` instead of a bare
    ``UnpicklingError``. ``EOFError``/``OSError`` propagate untouched —
    callers classify those through their liveness handling.
    """
    blob = conn.recv_bytes()
    try:
        frame = pickle.loads(blob)
    except Exception as exc:
        raise SimulationError(
            f"received a truncated or corrupt control frame"
            f" ({len(blob)} bytes) — the worker likely died while"
            f" writing it: {exc!r}"
        ) from exc
    return frame, len(blob)


@dataclass(frozen=True)
class RackShardSpec:
    """One rack as shipped to a shard worker."""

    rack_index: int
    name: str
    breaker_name: str
    rated_watts: float
    host_indices: Tuple[int, ...]


@dataclass(frozen=True)
class ShardSpec:
    """Everything a worker needs to rebuild its slice of the fleet.

    Only picklable value state crosses the process boundary; kernels,
    engines, tenant drivers, and launched instances are *reconstructed*
    in the worker from the same seeds and the cloud's launch log, which
    is what makes them bit-identical to serial.
    """

    profile: object  # ProviderProfile (picklable frozen dataclass)
    seed: int
    start_time: float
    host_indices: Tuple[int, ...]
    racks: Tuple[RackShardSpec, ...]
    tenant_profile: object  # Optional[DiurnalProfile]
    #: benign tenants multiplexed onto each host
    tenants_per_host: int
    #: "columnar" (TenantPopulation arrays) or "objects" (per-object drivers)
    population_mode: str
    power_config: object  # ServerPowerConfig
    breaker_knee_ratio: float
    fault_schedule: Optional[FaultSchedule]
    fault_seed: int
    #: shared-memory telemetry plane to attach to
    telemetry_name: str
    total_servers: int
    observer_capacity: int
    #: the cloud's full launch/terminate history (workers filter by host)
    launch_log: Tuple[tuple, ...]
    #: this worker's position in the shard list (names its trace track)
    shard_index: int = 0
    #: build a worker-side span tracer and flush it in every reply
    trace: bool = False
    #: worker tracer ring capacity (events)
    trace_capacity: int = 65536
    #: telemetry plane bank count (epoch_ticks + 1 under the shm control
    #: plane, the classic double buffer under pipe)
    telemetry_banks: int = 2
    #: shared-memory control plane segment (None: pipe-only protocol)
    control_name: Optional[str] = None
    #: per-shard host counts, in shard order (control-plane geometry)
    control_host_counts: Tuple[int, ...] = ()
    #: epoch frame capacity (control-plane geometry)
    control_epoch_ticks: int = _DEFAULT_EPOCH_TICKS
    #: "columnar" (vectorized cold-host ticks) or "objects" (per-kernel)
    host_mode: str = "objects"
    #: trace spill segment directory (None: ring overflow drops events)
    spill_dir: Optional[str] = None


@dataclass(frozen=True)
class BreakerSnapshot:
    """Driver-side view of one worker-held rack breaker."""

    rack_index: int
    name: str
    tripped: bool
    tripped_at: float
    trip_count: int


class _ShardRuntime:
    """Worker-side state: the shard's hosts, racks, tenants, and faults.

    Mirrors the serial loop body exactly, but only over this shard's
    hosts; all indices in messages are fleet-global.
    """

    def __init__(self, spec: ShardSpec):
        from repro.datacenter.breaker import CircuitBreaker
        from repro.datacenter.population import TenantPopulation, container_name_for
        from repro.datacenter.tenants import DiurnalTenantDriver
        from repro.datacenter.topology import Rack, WallPowerCache
        from repro.runtime.cloud import Instance, build_cloud_host

        self.spec = spec
        self.clock = VirtualClock(start=spec.start_time)
        root = DeterministicRNG(spec.seed)
        self.hosts = {
            i: build_cloud_host(spec.profile, self.clock, root, i)
            for i in spec.host_indices
        }
        self.cache = WallPowerCache(spec.power_config)
        self.racks = []
        for rs in spec.racks:
            self.racks.append(
                Rack(
                    name=rs.name,
                    kernels=[self.hosts[i].kernel for i in rs.host_indices],
                    breaker=CircuitBreaker(
                        name=rs.breaker_name, rated_watts=rs.rated_watts
                    ),
                    power_config=spec.power_config,
                    power_cache=self.cache,
                )
            )
        # Tenant demand: columnar arrays over this shard's hosts, or
        # per-object reference drivers. Tenant RNG forks are keyed by the
        # *global* tenant id, so the draws (and therefore the traces) are
        # bit-identical to the serial engine's regardless of sharding.
        kcount = spec.tenants_per_host
        self.population = None
        self.tenants: Dict[int, list] = {}
        if spec.population_mode == "columnar":
            self.population = TenantPopulation.for_hosts(
                root,
                [self.hosts[i].kernel for i in spec.host_indices],
                [self.hosts[i].engine for i in spec.host_indices],
                host_labels=spec.host_indices,
                tenants_per_host=kcount,
                profile=spec.tenant_profile,
            )
        else:
            self.tenants = {
                i: [
                    DiurnalTenantDriver(
                        kernel=self.hosts[i].kernel,
                        rng=root.fork(f"tenant-{i * kcount + j}"),
                        profile=spec.tenant_profile,
                        engine=self.hosts[i].engine,
                        container_name=container_name_for(j, kcount),
                    )
                    for j in range(kcount)
                ]
                for i in spec.host_indices
            }
        # Replay the cloud's launch/terminate history for this shard's
        # hosts, in global order: container ids, core allocations, and
        # cpuacct baselines come out identical to the serial cloud's.
        self.instances: Dict[str, Instance] = {}
        owned = set(spec.host_indices)
        for op in spec.launch_log:
            if op[0] == "launch":
                _, iid, tenant, host_index, cpus = op
                if host_index not in owned:
                    continue
                host = self.hosts[host_index]
                container = host.engine.create(
                    name=iid,
                    policy=spec.profile.policy_factory(),
                    cpus=cpus,
                    memory_mb=spec.profile.memory_mb_per_instance,
                )
                self.instances[iid] = Instance(
                    instance_id=iid,
                    tenant=tenant,
                    container=container,
                    host_index=host_index,
                    launched_at=spec.start_time,
                    _cpu_ns_at_launch=container.cpu_usage_ns,
                )
            else:  # ("terminate", iid, host_index)
                _, iid, host_index = op
                if host_index not in owned:
                    continue
                instance = self.instances.pop(iid)
                self.hosts[host_index].engine.remove(instance.container)
        self.tracer: Optional[SpanTracer] = None
        if spec.trace:
            self.tracer = SpanTracer(
                now_fn=lambda: self.clock.now,
                track=f"shard-{spec.shard_index}",
                capacity=spec.trace_capacity,
            )
            if spec.spill_dir is not None:
                self.tracer.enable_spill(spec.spill_dir)
        self.injector: Optional[FaultInjector] = None
        if spec.fault_schedule is not None:
            self.injector = FaultInjector(
                spec.fault_schedule,
                DeterministicRNG(spec.fault_seed),
                kernels=[self.hosts[i].kernel for i in spec.host_indices],
                engines=[self.hosts[i].engine for i in spec.host_indices],
                racks=self.racks,
                kernel_labels=spec.host_indices,
                rack_labels=[rs.rack_index for rs in spec.racks],
                populations=() if self.population is None else (self.population,),
            )
            self.injector.tracer = self.tracer
        # Columnar host engine: this shard's cold hosts tick as numpy
        # column sweeps, materializing lazily on per-object seams. The
        # engine is indexed shard-locally (position in host_indices);
        # everything crossing the pipe stays fleet-global.
        self._local_index = {g: l for l, g in enumerate(spec.host_indices)}
        #: observer id -> local host index holding a fidelity refcount
        self._observer_hosts: Dict[str, int] = {}
        self.host_engine = None
        if spec.host_mode == "columnar":
            from repro.kernel.columnar import ColumnarHostEngine

            self.host_engine = ColumnarHostEngine(
                [self.hosts[i].kernel for i in spec.host_indices],
                [self.hosts[i].engine for i in spec.host_indices],
                self.clock,
                power_config=spec.power_config,
                population=self.population,
            )
            for local, i in enumerate(spec.host_indices):
                self.hosts[i].engine.host_engine = self.host_engine
                self.hosts[i].engine.host_index = local
            self.cache.host_engine = self.host_engine
            if self.injector is not None:
                self.injector.host_engine = self.host_engine
            self.host_engine.adopt_all()
        self.plane = TelemetryPlane.attach(
            spec.telemetry_name, spec.total_servers, spec.observer_capacity,
            banks=spec.telemetry_banks,
        )
        #: observer id -> (plane slot, shard-resident monitor)
        self.monitors: Dict[str, tuple] = {}
        self._last_dark: set = set()
        self._sent_dark: frozenset = frozenset()
        #: test hook (("hang", s) frame): stall the next reply this long
        self._hang_s = 0.0

    # -- checkpoint / restore -------------------------------------------

    def checkpoint(self, seq: int, directory: str) -> Tuple[int, float]:
        """Serialize this shard's recoverable state; returns (bytes, wall_s).

        Everything lands in ONE pickle so shared identity survives the
        round trip: the kernels referenced by hosts, racks, populations,
        monitors, instances, and the fault injector come back as the
        same objects, and the shard clock stays the clock those kernels
        tick against. Excluded on purpose: the telemetry plane (re-
        attached by segment name), the tracer (rebuilt around the
        restored clock; only its ``(seq, dropped)`` counters persist so
        replayed events renumber identically), and the injector's tracer
        ref (stripped by ``FaultInjector.__getstate__``).
        """
        w0 = time.perf_counter()
        payload = {
            "version": SNAPSHOT_VERSION,
            "shard_index": self.spec.shard_index,
            "state": {
                "clock": self.clock,
                "hosts": self.hosts,
                "cache": self.cache,
                "racks": self.racks,
                "population": self.population,
                "tenants": self.tenants,
                "instances": self.instances,
                "injector": self.injector,
                "monitors": self.monitors,
                "host_engine": self.host_engine,
                "observer_hosts": self._observer_hosts,
                "last_dark": self._last_dark,
                "sent_dark": self._sent_dark,
                "tracer": None if self.tracer is None else self.tracer.counters(),
            },
        }
        blob = _dumps(payload)
        atomic_write(
            shard_snapshot_path(directory, self.spec.shard_index, seq), blob
        )
        return (len(blob), time.perf_counter() - w0)

    @classmethod
    def from_snapshot(cls, spec: ShardSpec, path: str) -> "_ShardRuntime":
        """Rebuild a shard runtime from a :meth:`checkpoint` snapshot."""
        payload = read_snapshot(path)
        if payload["shard_index"] != spec.shard_index:
            raise SimulationError(
                f"snapshot {path} belongs to shard {payload['shard_index']},"
                f" not {spec.shard_index}"
            )
        self = cls.__new__(cls)
        self.spec = spec
        state = payload["state"]
        self.clock = state["clock"]
        self.hosts = state["hosts"]
        self.cache = state["cache"]
        # memo entries are keyed on id(kernel); fresh process, fresh ids
        self.cache.reset()
        self.racks = state["racks"]
        self.population = state["population"]
        self.tenants = state["tenants"]
        self.instances = state["instances"]
        self.injector = state["injector"]
        self.monitors = state["monitors"]
        # the host engine rides the same pickle graph as hosts/cache/
        # injector, so the restored references all point at one object;
        # ``state.get`` keeps pre-columnar snapshots loadable
        self._local_index = {g: l for l, g in enumerate(spec.host_indices)}
        self.host_engine = state.get("host_engine")
        self._observer_hosts = state.get("observer_hosts", {})
        self._last_dark = state["last_dark"]
        self._sent_dark = state["sent_dark"]
        self.tracer = None
        if spec.trace:
            self.tracer = SpanTracer(
                now_fn=lambda: self.clock.now,
                track=f"shard-{spec.shard_index}",
                capacity=spec.trace_capacity,
            )
            if spec.spill_dir is not None:
                # a fresh incarnation segment: replayed frames re-spill
                # deterministically identical rows, deduped on read
                self.tracer.enable_spill(spec.spill_dir)
            if state["tracer"] is not None:
                self.tracer.restore_counters(*state["tracer"])
        if self.injector is not None:
            self.injector.tracer = self.tracer
        self.plane = TelemetryPlane.attach(
            spec.telemetry_name, spec.total_servers, spec.observer_capacity,
            banks=spec.telemetry_banks,
        )
        self._hang_s = 0.0
        return self

    def replay(self, frames: tuple) -> int:
        """Re-execute logged control frames after a restore.

        Full dispatch re-execution, not state patching: stateful streams
        (per-object tenant ``random.Random`` cursors, monitor backoff
        state, the tracer's ``seq`` counter) advance exactly as the dead
        worker's did, so every draw after the replay stays bit-identical
        to the uninterrupted run. Span buffers are drained and discarded
        per frame — the driver already ingested these barriers' spans
        from the worker that died.
        """
        for frame in frames:
            self.dispatch(frame)
            if self.tracer is not None:
                self.tracer.drain()
        return len(frames)

    # -- serial-loop mirrors --------------------------------------------

    def dark(self) -> set:
        """Global indices of this shard's dark (tripped or crashed) hosts."""
        dark = set()
        for rs, rack in zip(self.spec.racks, self.racks):
            if rack.breaker.tripped:
                dark.update(rs.host_indices)
        if self.injector is not None:
            for local in self.injector.crashed_now():
                dark.add(self.spec.host_indices[local])
        return dark

    def _crashed_kernel_ids(self) -> frozenset:
        if self.injector is None:
            return frozenset()
        return frozenset(
            id(self.hosts[self.spec.host_indices[local]].kernel)
            for local in self.injector.crashed_now()
        )

    def _breakers_safe(self) -> bool:
        crashed = self._crashed_kernel_ids()
        for rack in self.racks:
            if rack.breaker.tripped:
                continue
            if rack.wall_power(crashed) / rack.breaker.rated_watts > (
                self.spec.breaker_knee_ratio
            ):
                return False
        return True

    def apply_ops(self, ops: tuple) -> None:
        """Apply queued attacker ops (exec/reap) in driver order."""
        for op in ops:
            if op[0] == "exec":
                _, iid, name, factory, args = op
                self.instances[iid].container.exec(
                    name, workload=factory(*args)
                )
            else:  # ("reap", iid)
                self.instances[op[1]].container.reap_finished()

    def begin(self, bank: int, want_row: bool, ops: tuple):
        """Run-start barrier: apply ops and due faults, write the t=0 row."""
        self.apply_ops(ops)
        changed = self.injector is not None and self.injector.advance(self.clock.now)
        if want_row:
            self.write_row(bank)
        return changed

    def plan(self, step_hint: float, coalesce: bool = True):
        """The pre-advance half of one serial loop iteration."""
        tracer = self.tracer
        if tracer is not None:
            plan_w0 = time.perf_counter()
        now = self.clock.now
        dark = self.dark()
        self._last_dark = dark
        if self.population is not None:
            self.population.step(now, step_hint, dark_hosts=dark)
        else:
            for i in self.spec.host_indices:
                if i not in dark:
                    for driver in self.tenants[i]:
                        driver.step(now, step_hint)
        if not coalesce:
            if tracer is not None:
                tracer.add_span(
                    "shard.plan", now, now, time.perf_counter() - plan_w0
                )
            return None
        # Mirrors the serial engine's _coalesce_fingerprint exactly: the
        # columnar path folds the population's per-host aggregate demand
        # into the kernel fingerprint so demand moves break tick runs.
        # Cold hosts answer from the host engine's fingerprint column,
        # which tracks the per-object fold bit-for-bit.
        he = self.host_engine
        if self.population is not None:
            demands = tuple(
                0.0
                if i in dark
                else (
                    he.fingerprint(self._local_index[i])
                    if he is not None and he.is_cold(self._local_index[i])
                    else self.hosts[i].kernel.demand_fingerprint()
                )
                + self.population.host_demand(i)
                for i in self.spec.host_indices
            )
        else:
            demands = tuple(
                0.0 if i in dark else self.hosts[i].kernel.demand_fingerprint()
                for i in self.spec.host_indices
            )
        horizon = math.inf
        if self.population is not None:
            horizon = min(horizon, self.population.next_event_time(now, dark))
        for i in self.spec.host_indices:
            if i not in dark:
                if self.population is None:
                    for driver in self.tenants[i]:
                        horizon = min(horizon, driver.next_event_time(now))
                # cold hosts run single-phase unbounded workloads only
                # (an adoption invariant), so their boundary is +inf
                if he is None or not he.is_cold(self._local_index[i]):
                    horizon = min(
                        horizon,
                        now + self.hosts[i].kernel.next_phase_boundary_s(),
                    )
        if self.injector is not None:
            horizon = min(horizon, self.injector.next_barrier(now))
        frozen = frozenset(dark)
        added = tuple(sorted(frozen - self._sent_dark))
        removed = tuple(sorted(self._sent_dark - frozen))
        self._sent_dark = frozen
        result = (added, removed, demands, self._breakers_safe(), horizon)
        if tracer is not None:
            tracer.add_span(
                "shard.plan", now, now, time.perf_counter() - plan_w0
            )
        return result

    def epoch(self, ticks: tuple) -> bool:
        """Execute a batched run of interior ticks in one barrier.

        Each entry is ``(hint, step, bank, want_row)``: a ``hint`` runs
        the plan half first (non-coalescing — the driver already folded
        this tick's fingerprint from the epoch-head plan exchange), a
        ``None`` hint is a commit-only tick whose plan ran at the epoch
        head. Per-tick state evolution — tenant stepping, kernel ticks,
        breaker observation, fault replay, row writes into per-tick
        banks, ``shard.plan``/``shard.step`` spans — is exactly ``len
        (ticks)`` separate barriers' worth; only the synchronization is
        batched.
        """
        changed_any = False
        for hint, step, bank, want_row in ticks:
            if hint is not None:
                self.plan(hint, coalesce=False)
            if self.commit(step, bank, want_row, ()):
                changed_any = True
        return changed_any

    def commit(self, step: float, bank: int, want_row: bool, oids: tuple):
        """The post-plan half: advance, tick, feed breakers, apply faults."""
        tracer = self.tracer
        if tracer is not None:
            step_t0, step_w0 = self.clock.now, time.perf_counter()
        dark = self._last_dark
        barrier_t0 = self.clock.now
        self.clock.advance(step)
        if self.host_engine is not None:
            self.host_engine.tick_all(
                step,
                {self._local_index[g] for g in dark if g in self._local_index},
                barrier_t0,
            )
        else:
            for i in self.spec.host_indices:
                if i not in dark:
                    self.hosts[i].kernel.tick(step)
        crashed = self._crashed_kernel_ids()
        now = self.clock.now
        for rack in self.racks:
            rack.observe(step, now, crashed)
        changed = self.injector is not None and self.injector.advance(now)
        if want_row:
            self.write_row(bank)
        # sample after the full commit body: the same virtual instant a
        # serial strategy calls monitor.sample() right after run() returns
        for oid in oids:
            slot, monitor = self.monitors[oid]
            self.plane.write_observer(bank, slot, monitor.sample(self.clock.now))
        if tracer is not None:
            tracer.add_span(
                "shard.step",
                step_t0,
                self.clock.now,
                time.perf_counter() - step_w0,
                step=step,
                shard=self.spec.shard_index,
            )
        return changed

    def write_row(self, bank: int) -> None:
        """Write this shard's per-host trace values into the plane."""
        crashed: set = set()
        if self.injector is not None:
            crashed = {
                self.spec.host_indices[local]
                for local in self.injector.crashed_now()
            }
        dark = self.dark()
        for i in self.spec.host_indices:
            if i in crashed:
                self.plane.write_wall(bank, i, None)
            else:
                watts = 0.0 if i in dark else self.cache.watts(self.hosts[i].kernel)
                self.plane.write_wall(bank, i, watts)

    def watts(self, bank: int) -> None:
        for i in self.spec.host_indices:
            self.plane.write_wall(bank, i, self.cache.watts(self.hosts[i].kernel))

    def meters(self, ops: tuple) -> dict:
        """cpuacct billing meters for this shard's live instances."""
        self.apply_ops(ops)
        return {
            iid: (instance.container.cpu_usage_ns, instance._cpu_ns_at_launch)
            for iid, instance in self.instances.items()
        }

    def attach_monitor(self, oid: str, slot: int, iid: str, factory) -> bool:
        """Build a shard-resident monitor; keep it only when available."""
        if iid not in self.instances:
            raise SimulationError(f"instance not on this shard: {iid}")
        instance = self.instances[iid]
        local = None
        if self.host_engine is not None:
            # a monitor samples live kernel state every tick: pin the
            # host hot for as long as the observer exists
            local = self._local_index[instance.host_index]
            self.host_engine.observer_acquire(local)
        monitor = factory(instance)
        if not monitor.available():
            if local is not None:
                self.host_engine.observer_release(local)
            return False
        if local is not None:
            self._observer_hosts[oid] = local
        self.monitors[oid] = (slot, monitor)
        return True

    def degradation(self, oid: str) -> dict:
        slot, monitor = self.monitors[oid]
        summary = getattr(monitor, "degradation", None)
        return summary() if summary is not None else {}

    def release(self, oid: str) -> None:
        """Drop a shard-resident monitor; its plane slot is now free."""
        if oid not in self.monitors:
            raise SimulationError(f"unknown observer: {oid}")
        del self.monitors[oid]
        local = self._observer_hosts.pop(oid, None)
        if local is not None and self.host_engine is not None:
            # last observer out demotes the host back to columns
            self.host_engine.observer_release(local)

    def sample_observers(self, bank: int, oids: tuple, ops: tuple) -> None:
        """Explicit observer sampling (flushes queued ops first)."""
        self.apply_ops(ops)
        for oid in oids:
            slot, monitor = self.monitors[oid]
            self.plane.write_observer(bank, slot, monitor.sample(self.clock.now))

    def state(self) -> dict:
        breakers = tuple(
            (
                rs.rack_index,
                rack.breaker.name,
                rack.breaker.tripped,
                rack.breaker.tripped_at,
                rack.breaker.trip_count,
            )
            for rs, rack in zip(self.spec.racks, self.racks)
        )
        stats = self.injector.stats.as_dict() if self.injector is not None else {}
        tracer = self.tracer.health() if self.tracer is not None else None
        return {"breakers": breakers, "stats": stats, "tracer": tracer}

    def dispatch(self, msg: tuple):
        cmd = msg[0]
        if cmd == "plan":
            return self.plan(msg[1])
        if cmd == "commit":
            return self.commit(msg[1], msg[2], msg[3], msg[4])
        if cmd == "step":
            self.plan(msg[1], coalesce=False)
            return self.commit(msg[1], msg[2], msg[3], msg[4])
        if cmd == "epoch":
            return self.epoch(msg[1])
        if cmd == "begin":
            return self.begin(msg[1], msg[2], msg[3])
        if cmd == "watts":
            return self.watts(msg[1])
        if cmd == "state":
            return self.state()
        if cmd == "meters":
            return self.meters(msg[1])
        if cmd == "monitor":
            return self.attach_monitor(msg[1], msg[2], msg[3], msg[4])
        if cmd == "degradation":
            return self.degradation(msg[1])
        if cmd == "sample":
            return self.sample_observers(msg[1], msg[2], msg[3])
        if cmd == "release":
            return self.release(msg[1])
        if cmd == "checkpoint":
            return self.checkpoint(msg[1], msg[2])
        if cmd == "replay":
            return self.replay(msg[1])
        raise SimulationError(f"unknown shard command: {cmd!r}")


def _shard_worker_main(
    spec: ShardSpec, conn, restore_from: Optional[str] = None
) -> None:
    """Worker entry point: build (or restore) the shard, serve commands.

    ``restore_from`` is set by the supervisor when respawning a dead or
    hung shard: the runtime comes back from the named snapshot instead
    of a fresh seed build, and the first frame it serves is the
    ``("replay", ...)`` catch-up.
    """
    try:
        if restore_from is not None:
            runtime = _ShardRuntime.from_snapshot(spec, restore_from)
        else:
            runtime = _ShardRuntime(spec)
        cplane = None
        base_seq = 0
        if spec.control_name is not None:
            cplane = ControlPlane.attach(
                spec.control_name,
                spec.control_host_counts,
                spec.control_epoch_ticks,
            )
            # the doorbell baseline MUST be read before "ready" goes out:
            # the driver may post its first slot frame the instant it
            # sees the handshake, and a later baseline read would swallow
            # that frame's sequence bump. For a respawn the ordering also
            # skips the stale in-flight frame — the supervisor resends it
            # over the pipe after replay.
            base_seq = cplane.req_seq(spec.shard_index)
    except Exception:
        try:
            conn.send_bytes(_dumps(("error", traceback.format_exc())))
        finally:
            return
    conn.send_bytes(_dumps(("ready",)))
    try:
        if cplane is None:
            _serve_pipe(runtime, conn)
        else:
            try:
                _serve_dual(runtime, conn, cplane, spec.shard_index, base_seq)
            finally:
                cplane.close()
    finally:
        runtime.plane.close()


def _serve_pipe(runtime: _ShardRuntime, conn) -> None:
    """The classic single-transport command loop (control_plane="pipe")."""
    while True:
        try:
            blob = conn.recv_bytes()
        except (EOFError, OSError):
            return
        msg = pickle.loads(blob)
        if msg[0] == "close":
            return
        if msg[0] == "crash":  # test hook: die without a word
            os._exit(1)
        if msg[0] == "hang":  # test hook: stall the next reply
            runtime._hang_s = float(msg[1])
            conn.send_bytes(_dumps(("ok", None)))
            continue
        try:
            result = runtime.dispatch(msg)
            if runtime.tracer is not None:
                # flush this barrier's span buffer in the reply, so
                # the driver merges a clock-aligned global timeline
                reply = ("ok", result, runtime.tracer.drain())
            else:
                reply = ("ok", result)
        except Exception:
            reply = ("error", traceback.format_exc())
        if runtime._hang_s > 0.0:
            # armed by a ("hang") frame: simulate a wedged worker at
            # the next barrier (a respawned runtime starts at 0.0,
            # so the supervisor's re-sent frame sails through)
            time.sleep(runtime._hang_s)
            runtime._hang_s = 0.0
        conn.send_bytes(_dumps(reply))


def _serve_dual(
    runtime: _ShardRuntime, conn, cplane: ControlPlane, idx: int,
    base_seq: int,
) -> None:
    """The two-plane command loop (control_plane="shm").

    Busy-polls the request doorbell with a spin-then-sleep backoff,
    checking the pipe for slow-path frames on a coarser cadence (the
    driver never has both transports in flight for one shard — the
    protocol is strict request/reply — so ordering cannot race). The
    doorbell baseline was read before the ready handshake: a respawned
    worker never re-serves the in-flight slot frame, because the
    supervisor resends it over the pipe after replay.
    """
    last_seq = base_seq
    while True:
        # -- wait for the next request on either plane ---------------
        w0 = time.perf_counter()
        source = None
        spins = 0
        sleep_s = _DOORBELL_SLEEP_S
        while source is None:
            if cplane.req_seq(idx) != last_seq:
                last_seq = cplane.req_seq(idx)
                source = "shm"
                break
            if spins % 64 == 0 or spins > _DOORBELL_SPINS:
                try:
                    if conn.poll(0):
                        source = "pipe"
                        break
                except (EOFError, OSError):
                    return
            spins += 1
            if spins > _DOORBELL_SPINS:
                time.sleep(sleep_s)
                sleep_s = min(sleep_s * 2.0, _DOORBELL_SLEEP_MAX_S)
        wait_s = time.perf_counter() - w0
        if source == "pipe":
            try:
                blob = conn.recv_bytes()
            except (EOFError, OSError):
                return
            msg = pickle.loads(blob)
            if msg[0] == "close":
                return
            if msg[0] == "crash":  # test hook: die without a word
                os._exit(1)
            if msg[0] == "hang":  # test hook: stall the next reply
                runtime._hang_s = float(msg[1])
                conn.send_bytes(_dumps(("ok", None)))
                continue
        else:
            msg = cplane.read_request(idx)
        try:
            result = runtime.dispatch(msg)
            error = None
        except Exception:
            error = traceback.format_exc()
        drained: tuple = ()
        if error is None and runtime.tracer is not None:
            drained = runtime.tracer.drain()
        if runtime._hang_s > 0.0:
            # stall before replying: the reply-slot generation counter
            # (the supervisor's heartbeat) goes silent, same as a pipe
            # worker sitting on its reply
            time.sleep(runtime._hang_s)
            runtime._hang_s = 0.0
        if source == "pipe":
            if error is not None:
                conn.send_bytes(_dumps(("error", error)))
            elif runtime.tracer is not None:
                conn.send_bytes(_dumps(("ok", result, drained)))
            else:
                conn.send_bytes(_dumps(("ok", result)))
        elif error is not None:
            # slow-path reply: full pickled traceback on the pipe, the
            # status slot tells the driver to read it there
            conn.send_bytes(_dumps(("error", error)))
            cplane.write_status(idx, last_seq, ControlPlane.ERROR, wait_s)
        elif drained:
            conn.send_bytes(_dumps(("ok", result, drained)))
            cplane.write_status(
                idx, last_seq, ControlPlane.PAYLOAD_PIPE, wait_s
            )
        else:
            cplane.write_reply(idx, last_seq, msg[0], result, wait_s)


class _DriverFaultReplayer:
    """The driver's slice of a partitioned fault schedule.

    Holds the clock-jitter events (they displace recorded trace
    timestamps, and only the driver writes traces) and replays them with
    the same ``sample-jitter`` stream the serial injector would use, plus
    the ``injected:`` counters for the events it owns.
    """

    def __init__(self, schedule: FaultSchedule, seed: int):
        self.schedule = schedule
        self.stats = FaultStats()
        self.jitter = JitterModel(DeterministicRNG(seed), self.stats)
        self._cursor = 0
        #: optional span tracer (the sim's); jitter events become the
        #: same ``fault.clock-jitter`` markers the serial injector emits
        self.tracer: Optional[SpanTracer] = None

    def __getstate__(self) -> dict:
        # pickled wholesale into checkpoint manifests (schedule cursor,
        # jitter rng state, stats) minus the tracer, which the resuming
        # driver rewires to its own
        state = dict(self.__dict__)
        state["tracer"] = None
        return state

    def advance(self, now: float) -> bool:
        events = self.schedule.events
        changed = False
        while self._cursor < len(events) and events[self._cursor].at <= now + _EPS:
            event = events[self._cursor]
            self.stats.count(f"injected:{event.kind.value}")
            if self.tracer is not None and self.tracer.enabled:
                self.tracer.instant(
                    f"fault.{event.kind.value}",
                    at=event.at,
                    track="fault",
                    duration_s=event.duration_s,
                    magnitude=event.magnitude,
                )
            self.jitter.arm(event)
            self._cursor += 1
            changed = True
        return changed

    def next_barrier(self, now: float) -> float:
        barrier = math.inf
        events = self.schedule.events
        if self._cursor < len(events):
            barrier = events[self._cursor].at
        if now < self.jitter.until:
            barrier = min(barrier, self.jitter.until)
        return max(barrier, now)


class ParallelFleetEngine:
    """Drives a fleet simulation across rack-sharded worker processes.

    Created by ``DatacenterSimulation.run(parallel=N)`` on a *fresh*
    simulation (no ticks executed, no samples recorded). Instances
    launched before that point are replayed into the owning shards and
    the cloud is frozen. The driver keeps the traces, metrics, sampling
    grid, stability tracker, jitter replay, and attack-strategy state;
    everything per-host moves to the workers, and bulk telemetry rides
    the shared-memory plane. Results are bit-identical to the serial
    path on equal seeds — the golden-trace tests in
    ``tests/sim/test_parallel.py`` and ``tests/attack`` enforce it
    sample-for-sample.
    """

    def __init__(
        self,
        sim,
        workers: int,
        resume_dir: Optional[str] = None,
        control_plane: str = "shm",
        epoch_ticks: int = _DEFAULT_EPOCH_TICKS,
    ):
        if workers < 1:
            raise SimulationError(f"parallel needs at least one worker: {workers}")
        if control_plane not in ("pipe", "shm"):
            raise SimulationError(
                f"unknown control plane: {control_plane!r} (use 'pipe' or 'shm')"
            )
        if epoch_ticks < 1:
            raise SimulationError(f"epoch_ticks must be >= 1: {epoch_ticks}")
        self.control_plane_mode = control_plane
        self._epoch_ticks = epoch_ticks if control_plane == "shm" else 1
        self.sim = sim
        self._validate_fresh(sim)
        self.total_servers = len(sim.cloud.hosts)
        manifest = None
        if resume_dir is not None:
            manifest = load_manifest(resume_dir)
            if manifest["total_servers"] != self.total_servers:
                raise SimulationError(
                    f"checkpoint was taken at {manifest['total_servers']}"
                    f" servers, this simulation has {self.total_servers};"
                    " resume needs an identically constructed simulation"
                )
            if manifest["start_time"] != sim._start_time:
                raise SimulationError(
                    "checkpoint start time does not match this simulation;"
                    " resume needs an identically constructed simulation"
                )
            if manifest.get("hosts", "objects") != sim.host_mode:
                raise SimulationError(
                    f"checkpoint was taken with hosts="
                    f"{manifest.get('hosts', 'objects')!r}, this simulation"
                    f" uses hosts={sim.host_mode!r}; resume needs an"
                    " identically constructed simulation"
                )
            if manifest["control"] != (control_plane, self._epoch_ticks):
                ck_plane, ck_ticks = manifest["control"]
                raise SimulationError(
                    f"checkpoint was taken under --control-plane {ck_plane}"
                    f" with {ck_ticks} epoch tick(s), this run uses"
                    f" {control_plane} with {self._epoch_ticks}; resume"
                    " with the same control-plane configuration"
                )
        # a resumed engine's clock continues from the checkpoint instant;
        # the caller-facing replay cursor in DatacenterSimulation.run
        # no-ops the already-covered window
        self.clock = VirtualClock(
            start=sim.now if manifest is None else manifest["now"]
        )
        self._closed = False
        self.procs: list = []
        self.conns: list = []
        self.plane: Optional[TelemetryPlane] = None
        self.cplane: Optional[ControlPlane] = None

        cfg = sim.resilience
        self._resilience = cfg
        self._supervise = cfg is not None and cfg.supervise
        self._barrier_timeout_s = (
            cfg.barrier_timeout_s if cfg is not None else _DEFAULT_BARRIER_TIMEOUT_S
        )
        self._max_restarts = cfg.max_restarts if cfg is not None else 0
        self.res_metrics: Optional[ResilienceMetrics] = (
            ResilienceMetrics(sim.metrics.registry) if cfg is not None else None
        )

        rack_specs = [
            RackShardSpec(
                rack_index=r,
                name=rack.name,
                breaker_name=rack.breaker.name,
                rated_watts=rack.breaker.rated_watts,
                host_indices=tuple(
                    sim._kernel_index[id(k)] for k in rack.kernels
                ),
            )
            for r, rack in enumerate(sim.racks)
        ]
        n = min(workers, len(rack_specs))
        counts = [
            len(rack_specs) // n + (1 if i < len(rack_specs) % n else 0)
            for i in range(n)
        ]
        groups: List[List[RackShardSpec]] = []
        cursor = 0
        for count in counts:
            groups.append(rack_specs[cursor : cursor + count])
            cursor += count
        self.shard_hosts: List[List[int]] = [
            [i for rs in group for i in rs.host_indices] for group in groups
        ]
        self._shard_of_host: Dict[int, int] = {}
        for idx, hosts in enumerate(self.shard_hosts):
            for i in hosts:
                self._shard_of_host[i] = idx
        self._shard_dark: List[set] = [set() for _ in range(n)]

        #: instance id -> owning host index (from the full launch log,
        #: so ops can still be routed after driver-side dict deletions)
        self._instance_host: Dict[str, int] = {
            op[1]: op[3] for op in sim.cloud.launch_log if op[0] == "launch"
        }
        self._pending_ops: List[tuple] = []

        #: the sim's span tracer, if tracing was enabled pre-fork
        self._tracer = sim.tracer

        self.observer_capacity = max(16, 2 * self.total_servers)
        #: observer id -> (shard index, plane slot)
        self._observer_slots: Dict[str, Tuple[int, int]] = {}
        self._next_slot = 0
        #: plane slots returned by released observers, lowest-first so
        #: slot assignment stays deterministic under churn
        self._free_slots: List[int] = []
        #: monotonic counter making observer ids unique across slot
        #: reuse (a stale handle can never alias a recycled slot)
        self._observer_epoch = 0
        self._armed: Tuple[str, ...] = ()
        self._observed: Dict[str, Optional[float]] = {}
        self._observed_at: Optional[float] = None
        self._bank = 0

        if manifest is not None and manifest["workers"] != n:
            raise SimulationError(
                f"checkpoint was taken with {manifest['workers']} shard"
                f" workers, this run resolved to {n}; resume with the same"
                " --parallel value"
            )
        # supervisor bookkeeping: per-shard replay logs (frames since the
        # last checkpoint), restart budgets, reply-receipt heartbeats, and
        # the snapshot each respawn restores from (None: fresh rebuild)
        self._frame_log: List[List[tuple]] = [[] for _ in range(n)]
        self._restarts: List[int] = [0] * n
        self._last_reply_wall: List[float] = [time.monotonic()] * n
        self._restore_paths: List[Optional[str]] = [None] * n
        self._ckpt_seq = 0
        self._ckpt_origin = self.clock.now
        self._prev_ckpt_seq: Optional[int] = None
        if manifest is not None:
            self._ckpt_seq = manifest["seq"]
            self._ckpt_origin = manifest["ckpt_origin"]
            self._prev_ckpt_seq = manifest["seq"]
            self._restore_paths = [
                shard_snapshot_path(resume_dir, i, manifest["seq"])
                for i in range(n)
            ]

        # under batched epochs every row-carrying tick of an epoch needs
        # its own bank: with epoch_ticks + 1 banks, a bank is never
        # rewritten before the post-epoch fold has consumed it
        self._banks = 2 if control_plane == "pipe" else max(2, self._epoch_ticks + 1)
        self.plane = TelemetryPlane.create(
            self.total_servers, self.observer_capacity, banks=self._banks
        )
        #: driver-side doorbell sequence per shard (shm mode)
        self._cp_seq: List[int] = [0] * n
        if control_plane == "shm":
            self.cplane = ControlPlane.create(
                [len(hosts) for hosts in self.shard_hosts], self._epoch_ticks
            )
        self.ipc = IpcMetrics(
            workers=n,
            shm_segment_bytes=self.plane.segment_bytes
            + (0 if self.cplane is None else self.cplane.segment_bytes),
            registry=sim.metrics.registry,
        )
        sim.metrics.ipc = self.ipc

        self.faults: Optional[_DriverFaultReplayer] = None
        shard_schedules: List[Optional[FaultSchedule]] = [None] * n
        fault_seed = 0
        if sim.fault_injector is not None:
            fault_seed = sim.fault_injector.rng.seed
            shard_schedules, driver_schedule = sim.fault_injector.schedule.partition(
                self.shard_hosts,
                [[rs.rack_index for rs in group] for group in groups],
                self.total_servers,
                len(rack_specs),
            )
            self.faults = _DriverFaultReplayer(driver_schedule, fault_seed)
            self.faults.tracer = self._tracer

        launch_log = tuple(sim.cloud.launch_log)
        specs = [
            ShardSpec(
                profile=sim.profile,
                seed=sim.seed,
                start_time=sim._start_time,
                host_indices=tuple(self.shard_hosts[i]),
                racks=tuple(groups[i]),
                tenant_profile=sim.tenant_profile,
                tenants_per_host=sim.tenants_per_host,
                population_mode=sim.population_mode,
                power_config=sim.power_config,
                breaker_knee_ratio=sim.breaker_knee_ratio,
                fault_schedule=shard_schedules[i],
                fault_seed=fault_seed,
                telemetry_name=self.plane.name,
                total_servers=self.total_servers,
                observer_capacity=self.observer_capacity,
                launch_log=launch_log,
                shard_index=i,
                trace=self._tracer is not None,
                trace_capacity=(
                    self._tracer.capacity if self._tracer is not None else 65536
                ),
                telemetry_banks=self._banks,
                control_name=None if self.cplane is None else self.cplane.name,
                control_host_counts=tuple(
                    len(hosts) for hosts in self.shard_hosts
                ),
                control_epoch_ticks=self._epoch_ticks,
                host_mode=sim.host_mode,
                spill_dir=(
                    self._tracer.spill_dir if self._tracer is not None else None
                ),
            )
            for i in range(n)
        ]

        self._specs = specs
        try:
            try:
                self._ctx = multiprocessing.get_context("spawn")
            except ValueError as exc:  # pragma: no cover - platform-specific
                raise SimulationError(
                    "parallel fleet execution needs the 'spawn' process start"
                    " method, which this platform does not provide; run with"
                    " parallel=0"
                ) from exc
            for idx, spec in enumerate(specs):
                parent, child = self._ctx.Pipe()
                proc = self._ctx.Process(
                    target=_shard_worker_main,
                    args=(spec, child, self._restore_paths[idx]),
                    daemon=True,
                )
                proc.start()
                child.close()
                self.procs.append(proc)
                self.conns.append(parent)
            for idx in range(n):
                try:
                    self._wait_ready(idx)
                except _ShardFailure as failure:
                    raise SimulationError(
                        f"shard worker {idx} {failure.detail}"
                    ) from failure.cause
            if manifest is not None:
                self._restore_driver_state(manifest)
        except BaseException:
            self.close()
            raise
        sim.cloud.freeze(
            "parallel shard workers own the fleet; launch instances"
            " before the first parallel run"
        )

    def _wait_ready(self, idx: int) -> None:
        """Block until shard ``idx`` reports ready (bounded, liveness-aware)."""
        conn = self.conns[idx]
        proc = self.procs[idx]
        deadline = time.monotonic() + _STARTUP_TIMEOUT_S
        while not conn.poll(_POLL_S):
            if not proc.is_alive() and not conn.poll(0):
                raise _ShardFailure(
                    "died",
                    f"died during startup (exitcode {proc.exitcode})",
                )
            if time.monotonic() > deadline:
                raise _ShardFailure(
                    "hung",
                    f"did not come up within {_STARTUP_TIMEOUT_S:.0f}s",
                )
        msg, _ = _recv_frame(conn)
        if msg[0] != "ready":
            try:
                self.close()
            finally:
                raise SimulationError(
                    f"shard worker {idx} failed to build:\n{msg[1]}"
                )
        self._last_reply_wall[idx] = time.monotonic()

    def _restore_driver_state(self, manifest: dict) -> None:
        """Apply a checkpoint manifest's driver-held state (resume boot)."""
        sim = self.sim
        if (manifest["tracer"] is not None) != (self._tracer is not None):
            raise SimulationError(
                "tracing must match the checkpointed run to resume"
                " bit-identically: "
                + (
                    "the checkpoint was traced, this simulation is not"
                    if manifest["tracer"] is not None
                    else "this simulation is traced, the checkpoint was not"
                )
            )
        sample_origin, sample_count, interval = manifest["sample"]
        sim._sample_origin = sample_origin
        sim._sample_count = sample_count
        sim.sample_interval_s = interval
        self._bank = manifest["bank"]
        self._shard_dark = [set(dark) for dark in manifest["shard_dark"]]
        observers = manifest["observers"]
        self._observer_slots = dict(observers["slots"])
        self._next_slot = observers["next_slot"]
        self._free_slots = list(observers["free_slots"])
        self._observer_epoch = observers["epoch"]
        self._armed = tuple(observers["armed"])
        self._observed = dict(observers["observed"])
        self._observed_at = observers["observed_at"]
        self._pending_ops = list(manifest["pending_ops"])
        if manifest["faults"] is not None:
            # the manifest replayer carries the schedule cursor and the
            # jitter rng state as of the checkpoint
            self.faults = manifest["faults"]
            self.faults.tracer = self._tracer
        sim.fastforward.stability.restore(manifest["stability"])
        sim.aggregate_trace = manifest["aggregate_trace"]
        sim.server_traces = manifest["server_traces"]
        counters = manifest["metrics"]
        metrics = sim.metrics
        metrics.ticks = counters["ticks"]
        metrics.base_ticks = counters["base_ticks"]
        metrics.coalesced_ticks = counters["coalesced_ticks"]
        metrics.virtual_seconds = counters["virtual_seconds"]
        metrics.coalesced_seconds = counters["coalesced_seconds"]
        metrics.reference_ticks = counters["reference_ticks"]
        metrics.samples = counters["samples"]
        if manifest["tracer"] is not None:
            self._tracer.restore_state(manifest["tracer"])
        sim.restored_extras = dict(manifest["extras"])

    @staticmethod
    def _validate_fresh(sim) -> None:
        if (
            sim.metrics.ticks
            or len(sim.aggregate_trace)
            or sim.now != sim._start_time
        ):
            raise SimulationError(
                "the first parallel run must start from a fresh simulation:"
                " shard workers rebuild the fleet from seeds and cannot"
                " adopt mid-run serial state"
            )
        if sim.metrics.subsystem_timings is not None:
            raise SimulationError(
                "subsystem timings profile in-process kernels; they cannot"
                " observe shard workers (disable them or run serially)"
            )
        allowed = set()
        if sim.fault_injector is not None:
            allowed.add(sim.fault_injector.next_barrier)
        for source in sim.horizon_sources:
            if source in allowed or getattr(source, "parallel_safe", False):
                continue
            raise SimulationError(
                "a horizon source observes driver-side hosts and cannot"
                " follow the fleet into shard workers; wrap driver-state-"
                "only callables in repro.sim.fastforward.DriverHorizon,"
                " or run serially"
            )

    # -- control-frame transport ----------------------------------------

    def _fail_shard(self, idx: int, failure: _ShardFailure) -> None:
        """Abort the run with the full evidence trail (tears everything down)."""
        age = time.monotonic() - self._last_reply_wall[idx]
        waits = self.ipc.barrier_wait_s.get(idx, 0.0)
        if failure.kind == "hung":
            what = f"hung in a barrier ({failure.detail})"
        else:
            what = f"died mid-protocol ({failure.detail})"
        if not self._supervise:
            budget = (
                "; supervision is off —"
                " enable_resilience(supervise=True) respawns dead shards"
            )
        else:
            budget = (
                f"; restart budget exhausted ({self._restarts[idx]}"
                f"/{self._max_restarts} respawns used)"
            )
        try:
            self.close()
        finally:
            raise SimulationError(
                f"shard worker {idx} {what}; last reply"
                f" {age:.1f}s ago, cumulative barrier wait {waits:.1f}s"
                f" (ipc.barrier_wait_s{{shard={idx}}}){budget};"
                " workers torn down, shared memory unlinked"
            ) from failure.cause

    def _await_reply(self, idx: int) -> None:
        """Poll for a reply, bounded by the barrier timeout and liveness."""
        conn = self.conns[idx]
        proc = self.procs[idx]
        deadline = time.monotonic() + self._barrier_timeout_s
        while not conn.poll(_POLL_S):
            if not proc.is_alive() and not conn.poll(0):
                raise _ShardFailure("died", f"exitcode {proc.exitcode}")
            if time.monotonic() > deadline:
                raise _ShardFailure(
                    "hung",
                    f"no reply within barrier_timeout_s="
                    f"{self._barrier_timeout_s:.1f}",
                )

    def _handle_failure(
        self, idx: int, msg: Optional[tuple], failure: _ShardFailure
    ) -> None:
        """Respawn shard ``idx`` (budget permitting) or abort the run."""
        if not self._supervise or msg is None or msg[0] in ("crash", "close"):
            self._fail_shard(idx, failure)
        if self._restarts[idx] >= self._max_restarts:
            self._fail_shard(idx, failure)
        self._respawn_shard(idx, msg, failure)

    def _respawn_shard(
        self, idx: int, msg: tuple, failure: _ShardFailure
    ) -> None:
        """Kill/respawn one shard, replay it to the current barrier, resend.

        The replacement restores from the latest snapshot (or rebuilds
        from seeds when checkpointing is off), replays the frames logged
        since, then receives the in-flight frame again — by the time the
        caller's ``_collect`` retries, the shard is indistinguishable
        from one that never died.
        """
        w0 = time.monotonic()
        self._restarts[idx] += 1
        if self.res_metrics is not None:
            self.res_metrics.record_restart()
        old = self.procs[idx]
        if old.is_alive():
            old.terminate()
            old.join(timeout=5)
            if old.is_alive():  # pragma: no cover - defensive
                old.kill()
                old.join(timeout=5)
        else:
            old.join(timeout=5)
        try:
            self.conns[idx].close()
        except OSError:  # pragma: no cover - already broken
            pass
        parent, child = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_shard_worker_main,
            args=(self._specs[idx], child, self._restore_paths[idx]),
            daemon=True,
        )
        proc.start()
        child.close()
        self.procs[idx] = proc
        self.conns[idx] = parent
        frames = list(self._frame_log[idx])
        if frames and frames[-1] is msg:
            # the in-flight frame is resent separately below — replaying
            # it too would double-apply it
            frames = frames[:-1]
        try:
            self._wait_ready(idx)
            self.conns[idx].send_bytes(_dumps(("replay", tuple(frames))))
            self._await_reply(idx)
            reply, _ = _recv_frame(self.conns[idx])
        except _ShardFailure as chained:
            # the replacement died too: recurse within the restart budget
            # (the deeper call resends ``msg`` itself when it succeeds)
            self._handle_failure(idx, msg, chained)
            return
        except (EOFError, OSError) as exc:
            self._handle_failure(
                idx,
                msg,
                _ShardFailure("died", f"pipe failed during replay: {exc}", exc),
            )
            return
        if reply[0] == "error":
            try:
                self.close()
            finally:
                raise SimulationError(
                    f"respawned shard worker {idx} failed during replay"
                    f" (original failure: {failure}):\n{reply[1]}"
                ) from failure.cause
        self._last_reply_wall[idx] = time.monotonic()
        if self.res_metrics is not None:
            ticks = 0
            for f in frames:
                if f[0] in ("commit", "step"):
                    ticks += 1
                elif f[0] == "epoch":
                    ticks += len(f[1])
            self.res_metrics.record_replay(
                len(frames), ticks, time.monotonic() - w0
            )
        # the in-flight frame is resent over the pipe regardless of the
        # transport it originally used: the respawned worker baselines
        # its doorbell at attach, so the stale slot frame is never
        # served twice, and _collect switches to the pipe on failure
        self.conns[idx].send_bytes(_dumps(msg))

    def _post(self, idx: int, msg: tuple) -> Tuple[str, int]:
        """Ship one control frame; returns its ``(transport, bytes)``.

        The frame log records the *logical* tuple regardless of which
        plane carried it, so replay-after-respawn reproduces shm frames
        over the pipe verbatim.
        """
        if self._supervise and msg[0] not in _UNLOGGED_FRAMES:
            self._frame_log[idx].append(msg)
        if self.cplane is not None:
            posted = self.cplane.post(idx, msg)
            if posted is not None:
                seq, nbytes = posted
                self._cp_seq[idx] = seq
                return ("shm", nbytes)
        blob = _dumps(msg)
        try:
            self.conns[idx].send_bytes(blob)
        except (BrokenPipeError, OSError) as exc:
            self._handle_failure(
                idx, msg, _ShardFailure("died", f"pipe write failed: {exc}", exc)
            )
            # _handle_failure either raised or respawned + resent msg
        return ("pipe", len(blob))

    def _await_shm_reply(self, idx: int) -> None:
        """Busy-poll the reply generation counter, bounded by liveness.

        The counter doubles as the heartbeat: a worker that served the
        frame has bumped it to the doorbell value; one that died or
        wedged has not, and the spin loop degrades to short sleeps with
        periodic ``is_alive``/timeout checks — the same died/hung
        classification as the pipe path.
        """
        cplane = self.cplane
        want = self._cp_seq[idx]
        proc = self.procs[idx]
        deadline = time.monotonic() + self._barrier_timeout_s
        spins = 0
        naps = 0
        sleep_s = _DOORBELL_SLEEP_S
        while cplane.rsp_seq(idx) != want:
            spins += 1
            if spins <= _DOORBELL_SPINS:
                continue
            time.sleep(sleep_s)
            sleep_s = min(sleep_s * 2.0, _DOORBELL_SLEEP_MAX_S)
            naps += 1
            if naps % _DOORBELL_CHECK_EVERY == 0:
                if not proc.is_alive() and cplane.rsp_seq(idx) != want:
                    raise _ShardFailure("died", f"exitcode {proc.exitcode}")
                if time.monotonic() > deadline:
                    raise _ShardFailure(
                        "hung",
                        f"no reply within barrier_timeout_s="
                        f"{self._barrier_timeout_s:.1f}",
                    )

    def _collect(
        self, idx: int, sent: Tuple[str, int], msg: Optional[tuple] = None
    ):
        transport, nbytes = sent
        # epoch frames amortize their round trip over the batched ticks
        ticks = len(msg[1]) if msg is not None and msg[0] == "epoch" else 1
        while True:
            t0 = time.perf_counter()
            try:
                if transport == "shm":
                    self._await_shm_reply(idx)
                    reply = None
                    received = 0
                else:
                    self._await_reply(idx)
                    reply, received = _recv_frame(self.conns[idx])
            except _ShardFailure as failure:
                self._handle_failure(idx, msg, failure)
                # respawned and resent over the pipe: collect there
                transport = "pipe"
                continue
            except (EOFError, OSError) as exc:
                self._handle_failure(
                    idx,
                    msg,
                    _ShardFailure("died", f"pipe read failed: {exc}", exc),
                )
                transport = "pipe"
                continue
            break
        self._last_reply_wall[idx] = time.monotonic()
        self.ipc.record_barrier_wait(
            idx, time.perf_counter() - t0, ticks=ticks
        )
        if transport == "shm":
            self.ipc.record_doorbell_wait(self.cplane.reply_wait_s(idx))
            status = self.cplane.reply_status(idx)
            if status == ControlPlane.OK:
                result, received = self.cplane.read_reply(idx, msg[0])
                self.ipc.record_shm_frame(nbytes, received)
                return result
            # PAYLOAD_PIPE (tracer drain) or ERROR: the request used the
            # slots but the reply is a full pickled frame on the pipe
            self._await_reply(idx)
            reply, received = _recv_frame(self.conns[idx])
            self.ipc.record_shm_frame(nbytes, 0)
            self.ipc.control_bytes_received += received
        else:
            self.ipc.record_frame(nbytes, received)
        if reply[0] == "error":
            raise SimulationError(f"shard worker {idx} failed:\n{reply[1]}")
        if len(reply) == 3 and reply[2] and self._tracer is not None:
            # piggybacked worker trace flush: merge into the driver tracer
            self._tracer.ingest(reply[2])
        return reply[1]

    def _exchange(self, msgs: List[tuple]) -> list:
        """Send one frame per shard, then collect every reply in order."""
        if self._closed:
            raise SimulationError("parallel engine is closed")
        tracer = self._tracer
        trace_on = tracer is not None and tracer.enabled
        if trace_on:
            w0 = time.perf_counter()
        sent = [self._post(idx, msg) for idx, msg in enumerate(msgs)]
        out = [
            self._collect(idx, n, msgs[idx]) for idx, n in enumerate(sent)
        ]
        if trace_on:
            now = self.clock.now
            attrs = {"track": "barrier", "shards": len(msgs)}
            if msgs[0][0] == "epoch":
                attrs["ticks"] = len(msgs[0][1])
            tracer.add_span(
                "barrier." + msgs[0][0],
                now,
                now,
                time.perf_counter() - w0,
                **attrs,
            )
        return out

    def _broadcast(self, msg: tuple) -> list:
        return self._exchange([msg] * len(self.conns))

    def _request(self, idx: int, msg: tuple):
        """One round trip with a single shard."""
        if self._closed:
            raise SimulationError("parallel engine is closed")
        tracer = self._tracer
        trace_on = tracer is not None and tracer.enabled
        if trace_on:
            w0 = time.perf_counter()
        out = self._collect(idx, self._post(idx, msg), msg)
        if trace_on:
            now = self.clock.now
            tracer.add_span(
                "barrier." + msg[0],
                now,
                now,
                time.perf_counter() - w0,
                track="barrier",
                shard=idx,
            )
        return out

    def _next_bank(self) -> int:
        """Rotate the bank cursor before a frame that carries shm data.

        Two banks (a double buffer) under the pipe plane; ``epoch_ticks
        + 1`` under the shm plane, so every row-carrying tick of a
        batched epoch lands in its own bank and none is overwritten
        before the driver folds it after the single epoch reply.
        """
        self._bank = (self._bank + 1) % self.plane.banks
        return self._bank

    def _take_ops_for(self, shard: int) -> tuple:
        """Pop this shard's queued ops, preserving their queue order."""
        keep, out = [], []
        for op in self._pending_ops:
            if self._shard_of_host[self._instance_host[op[1]]] == shard:
                out.append(op)
            else:
                keep.append(op)
        self._pending_ops = keep
        return tuple(out)

    # -- run loop --------------------------------------------------------

    def _due_times(self, now: float) -> list:
        """Sample times due at or before ``now`` (the serial catch-up rule)."""
        sim = self.sim
        due = []
        count = sim._sample_count
        while sim._sample_origin + count * sim.sample_interval_s <= now + _EPS:
            due.append(sim._sample_origin + count * sim.sample_interval_s)
            count += 1
        return due

    def _merge_plans(self, plans) -> tuple:
        demands = [0.0] * self.total_servers
        safe = True
        horizon = math.inf
        for idx, (added, removed, values, shard_safe, shard_horizon) in enumerate(
            plans
        ):
            shard_dark = self._shard_dark[idx]
            shard_dark.difference_update(removed)
            shard_dark.update(added)
            for i, value in zip(self.shard_hosts[idx], values):
                demands[i] = value
            safe = safe and shard_safe
            horizon = min(horizon, shard_horizon)
        dark = set()
        for shard_dark in self._shard_dark:
            dark.update(shard_dark)
        return dark, tuple(demands), safe, horizon

    def _record_samples(self, due: list, bank: int) -> None:
        """Fold one trace sample per due time out of the plane's row."""
        sim = self.sim
        plane = self.plane
        row = [plane.read_wall(bank, i) for i in range(self.total_servers)]
        self.ipc.shm_row_bytes += plane.row_bytes
        for when in due:
            t = when
            if self.faults is not None:
                last = (
                    sim.aggregate_trace.times[-1]
                    if sim.aggregate_trace.times
                    else 0.0
                )
                t = self.faults.jitter.jittered_time(
                    when, sim.sample_interval_s, floor=last
                )
            total = 0.0
            for i, watts in enumerate(row):
                if watts is None:
                    sim.server_traces[i].note_gap(t)
                    continue
                sim.server_traces[i].append(t, watts)
                total += watts
            sim.aggregate_trace.append(t, total)
            sim.metrics.samples += 1
            sim._sample_count += 1

    def _shard_oids(self, idx: int, oids: tuple) -> tuple:
        return tuple(
            oid for oid in oids if self._observer_slots[oid][0] == idx
        )

    def _read_observers(self, bank: int, oids: tuple) -> None:
        """Cache the piggybacked observer readings for this instant."""
        values = {}
        for oid in oids:
            _, slot = self._observer_slots[oid]
            values[oid] = self.plane.read_observer(bank, slot)
        self.ipc.shm_observer_bytes += 8 * len(oids)
        self._observed = values
        self._observed_at = self.clock.now

    # -- tick bodies -----------------------------------------------------

    def _finish_tick(
        self, remaining: float, dt: float, step: float, verb: str
    ) -> float:
        """The post-plan half of one classic tick: advance, one barrier,
        fold the row — exactly the serial loop's commit sequence."""
        sim = self.sim
        engine = sim.fastforward
        n = len(self.conns)
        tracer = self._tracer
        trace_on = tracer is not None and tracer.enabled
        if trace_on:
            tick_t0, tick_w0 = self.clock.now, time.perf_counter()
        self.clock.advance(step)
        final = remaining - step <= _EPS
        oids = self._armed if final else ()
        due = self._due_times(self.clock.now)
        want_row = bool(due)
        bank = self._next_bank() if (want_row or oids) else self._bank
        replies = self._exchange(
            [
                (verb, step, bank, want_row, self._shard_oids(i, oids))
                for i in range(n)
            ]
        )
        changed = any(replies)
        if self.faults is not None and self.faults.advance(self.clock.now):
            changed = True
        if changed:
            engine.stability.reset()
        if due:
            self._record_samples(due, bank)
        if oids:
            self._read_observers(bank, oids)
        sim.metrics.record_tick(step, dt)
        if trace_on:
            tracer.add_span(
                "fleet.tick",
                tick_t0,
                self.clock.now,
                time.perf_counter() - tick_w0,
                step=step,
            )
        return remaining - step

    def _classic_tick(self, remaining: float, dt: float, coalesce: bool) -> float:
        """One tick with its own plan + commit barriers (pipe protocol)."""
        sim = self.sim
        engine = sim.fastforward
        step = min(dt, remaining)
        if coalesce:
            plans = self._broadcast(("plan", step))
            dark, demands, safe, horizon = self._merge_plans(plans)
            stable = (
                engine.stability.observe((demands, frozenset(dark))) and safe
            )
            horizon = min(horizon, sim.next_sample_time)
            horizon = min(
                horizon,
                fold_driver_horizons(self.clock.now, sim.horizon_sources),
            )
            if self.faults is not None:
                horizon = min(
                    horizon, self.faults.next_barrier(self.clock.now)
                )
            step = engine.plan_step(
                now=self.clock.now,
                remaining=remaining,
                base_dt=dt,
                horizon=horizon,
                stable=stable,
            )
            verb = "commit"
        else:
            verb = "step"
        return self._finish_tick(remaining, dt, step, verb)

    def _checkpoint_pending(self) -> bool:
        """Whether the run loop will checkpoint at the next barrier.

        Epoch planners stop batching right after the tick that crosses
        a ``checkpoint_every`` boundary so the snapshot lands at the
        same barrier an unbatched run would have picked.
        """
        cfg = self._resilience
        if (
            cfg is None
            or cfg.checkpoint_dir is None
            or self.sim.checkpoint_extras
        ):
            return False
        every = cfg.checkpoint_every
        return (
            self.clock.now + _EPS
            >= self._ckpt_origin + (self._ckpt_seq + 1) * every
        )

    def _plan_tick(self, step: float, floor: float) -> tuple:
        """Driver-side effects of one batched tick, in serial order.

        Advances the clock, rotates the bank for a row-carrying tick,
        replays driver-visible fault events at the new instant, and
        precomputes the jittered sample stamps — threading the jitter
        ``floor`` across the epoch because the trace rows themselves are
        folded only after the single epoch reply. Sample counters move
        here (not at fold time) so ``next_sample_time`` evolves exactly
        as it would between serial barriers.
        """
        sim = self.sim
        self.clock.advance(step)
        now = self.clock.now
        due = self._due_times(now)
        want_row = bool(due)
        bank = self._next_bank() if want_row else self._bank
        changed = self.faults is not None and self.faults.advance(now)
        stamps = []
        for when in due:
            t = when
            if self.faults is not None:
                t = self.faults.jitter.jittered_time(
                    when, sim.sample_interval_s, floor=floor
                )
            stamps.append(t)
            floor = t
            sim._sample_count += 1
            sim.metrics.samples += 1
        return bank, want_row, stamps, floor, changed

    def _fold_rows(self, folds: list) -> None:
        """Fold the epoch's row-carrying banks into the traces, in tick
        order, with the stamps :meth:`_plan_tick` precomputed."""
        sim = self.sim
        plane = self.plane
        for bank, stamps in folds:
            row = [plane.read_wall(bank, i) for i in range(self.total_servers)]
            self.ipc.shm_row_bytes += plane.row_bytes
            for t in stamps:
                total = 0.0
                for i, watts in enumerate(row):
                    if watts is None:
                        sim.server_traces[i].note_gap(t)
                        continue
                    sim.server_traces[i].append(t, watts)
                    total += watts
                sim.aggregate_trace.append(t, total)

    def _flush_epoch(
        self, frames: list, folds: list, spans: list, dt: float, epoch_w0: float
    ) -> None:
        """One epoch barrier for the batched frames, then the fold."""
        sim = self.sim
        tracer = self._tracer
        trace_on = tracer is not None and tracer.enabled
        replies = self._exchange([("epoch", tuple(frames))] * len(self.conns))
        if any(replies):
            sim.fastforward.stability.reset()
        self._fold_rows(folds)
        wall = (time.perf_counter() - epoch_w0) / len(frames)
        for t0, t1, step in spans:
            sim.metrics.record_tick(step, dt)
            if trace_on:
                tracer.add_span("fleet.tick", t0, t1, wall, step=step)

    def _epoch_coalesce(self, remaining: float, dt: float) -> float:
        """Batch coalesced ticks behind one plan exchange + one epoch.

        The head tick pays a real plan exchange; while the merged
        fingerprint holds (no shard event before the merged horizon, no
        breaker near its knee, no sample-cadence or checkpoint boundary
        forcing a driver action) the planner replays the serial planning
        loop locally and appends interior ticks to the epoch — each one
        carrying the plan hint the worker re-executes in-shard, so the
        per-tick state evolution is identical to ``len(frames)``
        separate barriers.
        """
        sim = self.sim
        engine = sim.fastforward
        epoch_w0 = time.perf_counter()
        hint0 = min(dt, remaining)
        plans = self._broadcast(("plan", hint0))
        dark, demands, safe, shard_horizon = self._merge_plans(plans)
        fp = (demands, frozenset(dark))
        frames: list = []
        folds: list = []
        spans: list = []
        floor = (
            sim.aggregate_trace.times[-1] if sim.aggregate_trace.times else 0.0
        )
        while True:
            hint = min(dt, remaining)
            stable = engine.stability.peek(fp) and safe
            horizon = min(shard_horizon, sim.next_sample_time)
            horizon = min(
                horizon,
                fold_driver_horizons(self.clock.now, sim.horizon_sources),
            )
            if self.faults is not None:
                horizon = min(
                    horizon, self.faults.next_barrier(self.clock.now)
                )
            step = engine.plan_step(
                now=self.clock.now,
                remaining=remaining,
                base_dt=dt,
                horizon=horizon,
                stable=stable,
            )
            if remaining - step <= _EPS and self._armed:
                if frames:
                    # flush first: the armed tick re-plans next call, so
                    # the worker still sees one plan per tick
                    break
                # a lone armed tick is the classic plan + commit pair
                engine.stability.observe(fp)
                return self._finish_tick(remaining, dt, step, "commit")
            engine.stability.observe(fp)
            t0 = self.clock.now
            bank, want_row, stamps, floor, changed = self._plan_tick(
                step, floor
            )
            if changed:
                engine.stability.reset()
            frames.append(
                (None if not frames else hint, step, bank, 1 if want_row else 0)
            )
            if want_row:
                folds.append((bank, stamps))
            spans.append((t0, self.clock.now, step))
            remaining -= step
            if (
                remaining <= _EPS
                or self.clock.now + _EPS >= shard_horizon
                or len(frames) >= self._epoch_ticks
                or self._checkpoint_pending()
                or not safe
            ):
                break
        self._flush_epoch(frames, folds, spans, dt, epoch_w0)
        return remaining

    def _epoch_fixed(self, remaining: float, dt: float) -> float:
        """Batch fixed-step ticks (non-coalescing runs) into one epoch.

        Every frame carries its step as the plan hint — the worker's
        fused plan-then-commit, exactly the classic ``step`` verb. With
        no stability observes between non-coalescing barriers, driver
        fault resets defer losslessly to the epoch flush.
        """
        sim = self.sim
        engine = sim.fastforward
        epoch_w0 = time.perf_counter()
        frames: list = []
        folds: list = []
        spans: list = []
        floor = (
            sim.aggregate_trace.times[-1] if sim.aggregate_trace.times else 0.0
        )
        driver_changed = False
        while True:
            step = min(dt, remaining)
            if remaining - step <= _EPS and self._armed:
                if frames:
                    break
                return self._finish_tick(remaining, dt, step, "step")
            t0 = self.clock.now
            bank, want_row, stamps, floor, changed = self._plan_tick(
                step, floor
            )
            if changed:
                driver_changed = True
            frames.append((step, step, bank, 1 if want_row else 0))
            if want_row:
                folds.append((bank, stamps))
            spans.append((t0, self.clock.now, step))
            remaining -= step
            if (
                remaining <= _EPS
                or len(frames) >= self._epoch_ticks
                or self._checkpoint_pending()
            ):
                break
        if driver_changed:
            engine.stability.reset()
        self._flush_epoch(frames, folds, spans, dt, epoch_w0)
        return remaining

    # -- checkpointing ---------------------------------------------------

    def checkpoint_if_due(self) -> None:
        """Write a checkpoint when a ``checkpoint_every`` boundary passed.

        Fired automatically at interior tick barriers while no strategy
        has registered ``checkpoint_extras`` (fleet runs, attack warmup),
        and at strategy *safepoints* (``sim.checkpoint_safepoint()``)
        once one has — so a snapshot never lands mid-iteration of a
        campaign loop, where driver-side strategy state would be
        unreconstructable. Boundaries are best-effort: a coalesced tick
        that jumps several boundaries yields one checkpoint, at the same
        barrier in every equally-seeded run.
        """
        cfg = self._resilience
        if cfg is None or cfg.checkpoint_dir is None or self._closed:
            return
        every = cfg.checkpoint_every
        now = self.clock.now
        if now + _EPS < self._ckpt_origin + (self._ckpt_seq + 1) * every:
            return
        seq = int(math.floor((now - self._ckpt_origin + _EPS) / every))
        self._checkpoint(seq, cfg.checkpoint_dir)

    def _checkpoint(self, seq: int, directory: str) -> None:
        """One checkpoint barrier: shard snapshots, then the manifest.

        Crash-safe ordering — every file is written atomically, shard
        snapshots land before the manifest flips to the new ``seq``, and
        only then is the previous checkpoint pruned: an interruption at
        any instant leaves a complete checkpoint on disk.
        """
        w0 = time.perf_counter()
        os.makedirs(directory, exist_ok=True)
        replies = self._broadcast(("checkpoint", seq, directory))
        total_bytes = sum(reply[0] for reply in replies)
        # capture the manifest after the broadcast so the tracer state
        # already contains this barrier.checkpoint span (golden and
        # resumed timelines agree on it)
        atomic_write(manifest_path(directory), _dumps(self._build_manifest(seq)))
        prev = self._prev_ckpt_seq
        self._prev_ckpt_seq = seq
        self._ckpt_seq = seq
        for idx in range(len(self.conns)):
            self._restore_paths[idx] = shard_snapshot_path(directory, idx, seq)
            self._frame_log[idx].clear()
        if prev is not None and prev != seq:
            for idx in range(len(self.conns)):
                try:
                    os.unlink(shard_snapshot_path(directory, idx, prev))
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
        self.res_metrics.record_checkpoint(
            total_bytes, time.perf_counter() - w0
        )

    def _build_manifest(self, seq: int) -> dict:
        sim = self.sim
        return {
            "version": MANIFEST_VERSION,
            "seq": seq,
            "now": self.clock.now,
            "workers": len(self.conns),
            "total_servers": self.total_servers,
            "start_time": sim._start_time,
            "ckpt_origin": self._ckpt_origin,
            "control": (self.control_plane_mode, self._epoch_ticks),
            "hosts": sim.host_mode,
            "sample": (
                sim._sample_origin,
                sim._sample_count,
                sim.sample_interval_s,
            ),
            "bank": self._bank,
            "shard_dark": [set(dark) for dark in self._shard_dark],
            "observers": {
                "slots": dict(self._observer_slots),
                "next_slot": self._next_slot,
                "free_slots": list(self._free_slots),
                "epoch": self._observer_epoch,
                "armed": tuple(self._armed),
                "observed": dict(self._observed),
                "observed_at": self._observed_at,
            },
            "pending_ops": list(self._pending_ops),
            "faults": self.faults,
            "stability": sim.fastforward.stability.snapshot(),
            "aggregate_trace": sim.aggregate_trace,
            "server_traces": sim.server_traces,
            "metrics": {
                "ticks": sim.metrics.ticks,
                "base_ticks": sim.metrics.base_ticks,
                "coalesced_ticks": sim.metrics.coalesced_ticks,
                "virtual_seconds": sim.metrics.virtual_seconds,
                "coalesced_seconds": sim.metrics.coalesced_seconds,
                "reference_ticks": sim.metrics.reference_ticks,
                "samples": sim.metrics.samples,
            },
            "tracer": (
                self._tracer.snapshot_state()
                if self._tracer is not None
                else None
            ),
            "extras": {
                key: provider() for key, provider in sim.checkpoint_extras.items()
            },
        }

    def run(
        self,
        seconds: float,
        dt: float = 1.0,
        coalesce: bool = False,
        span_t0: Optional[float] = None,
        span_seconds: Optional[float] = None,
        skip_begin: bool = False,
    ) -> None:
        """Advance the sharded fleet (mirrors the serial ``run`` loop 1:1).

        ``span_t0``/``span_seconds``/``skip_begin`` serve the resume
        path only: the first live run after a resume covers the tail of
        a caller window whose head the checkpoint already executed, so
        its ``fleet.run`` span must report the caller's full window and
        no run-start barrier may fire mid-window (the golden run had
        none there).
        """
        if seconds <= 0:
            raise SimulationError(f"run needs positive duration: {seconds}")
        sim = self.sim
        engine = sim.fastforward
        n = len(self.conns)
        tracer = self._tracer
        trace_on = tracer is not None and tracer.enabled
        if trace_on:
            run_t0, run_w0 = self.clock.now, time.perf_counter()
        with WallTimer(sim.metrics):
            if not skip_begin:
                due = self._due_times(self.clock.now)
                want_row = bool(due)
                bank = self._next_bank() if want_row else self._bank
                replies = self._exchange(
                    [
                        ("begin", bank, want_row, self._take_ops_for(i))
                        for i in range(n)
                    ]
                )
                changed = any(replies)
                if self.faults is not None and self.faults.advance(
                    self.clock.now
                ):
                    changed = True
                if changed:
                    engine.stability.reset()
                if due:
                    self._record_samples(due, bank)
            remaining = seconds
            batch = self.cplane is not None and self._epoch_ticks > 1
            ops = sim._ops
            while remaining > _EPS:
                if batch and coalesce:
                    remaining = self._epoch_coalesce(remaining, dt)
                elif batch:
                    remaining = self._epoch_fixed(remaining, dt)
                else:
                    remaining = self._classic_tick(remaining, dt, coalesce)
                if self._resilience is not None and not sim.checkpoint_extras:
                    self.checkpoint_if_due()
                if ops is not None:
                    ops.on_tick(self.clock.now)
        if trace_on:
            tracer.add_span(
                "fleet.run",
                span_t0 if span_t0 is not None else run_t0,
                self.clock.now,
                time.perf_counter() - run_w0,
                seconds=span_seconds if span_seconds is not None else seconds,
                dt=dt,
                coalesce=coalesce,
            )

    # -- attacker plumbing ----------------------------------------------

    def queue_exec(self, instance_id: str, name: str, factory, args: tuple) -> None:
        """Queue a workload exec for the owning shard's next barrier."""
        if instance_id not in self._instance_host:
            raise SimulationError(f"unknown instance: {instance_id}")
        try:
            _dumps((factory, args))
        except Exception as exc:
            raise SimulationError(
                "workload factories crossing into shard workers must be"
                f" picklable (module-level callables): {exc}"
            ) from exc
        self._pending_ops.append(("exec", instance_id, name, factory, args))

    def queue_reap(self, instance_id: str) -> None:
        """Queue a reap of finished tasks for the owning shard."""
        if instance_id not in self._instance_host:
            raise SimulationError(f"unknown instance: {instance_id}")
        self._pending_ops.append(("reap", instance_id))

    def attach_monitor(self, instance_id: str, factory) -> Optional[str]:
        """Build a monitor inside the shard owning ``instance_id``.

        Returns the observer id, or ``None`` when the monitor reports
        its channel unavailable (mirroring the serial availability
        check, which the worker performs on its own kernel state).

        Plane slots freed by :meth:`release_observer` are reused
        (lowest slot first) before fresh ones are carved, so long-lived
        campaigns that rotate monitors never exhaust the fixed
        ``max(16, 2*S)`` observer capacity.
        """
        host = self._instance_host.get(instance_id)
        if host is None:
            raise SimulationError(f"unknown instance: {instance_id}")
        reused = bool(self._free_slots)
        if not reused and self._next_slot >= self.observer_capacity:
            raise SimulationError(
                f"observer capacity exhausted ({self.observer_capacity});"
                " release observers of terminated instances to reclaim"
                " their slots"
            )
        try:
            _dumps(factory)
        except Exception as exc:
            raise SimulationError(
                "monitor factories crossing into shard workers must be"
                f" picklable (module-level callables): {exc}"
            ) from exc
        shard = self._shard_of_host[host]
        slot = self._free_slots.pop(0) if reused else self._next_slot
        oid = f"obs-{slot}-{self._observer_epoch}"
        available = self._request(
            shard, ("monitor", oid, slot, instance_id, factory)
        )
        if not available:
            if reused:
                insort(self._free_slots, slot)
            return None
        self._observer_epoch += 1
        if not reused:
            self._next_slot += 1
        self._observer_slots[oid] = (shard, slot)
        return oid

    def release_observer(self, oid: str) -> None:
        """Tear down a shard-resident monitor and reclaim its plane slot.

        The observer id becomes invalid immediately; its slot goes on
        the free list and the owning worker drops its monitor object.
        Call this when the monitored instance's campaign retires it —
        rotating campaigns then recycle a bounded slot pool instead of
        exhausting the observer capacity.
        """
        info = self._observer_slots.pop(oid, None)
        if info is None:
            raise SimulationError(f"unknown observer: {oid}")
        shard, slot = info
        self._request(shard, ("release", oid))
        if oid in self._armed:
            self._armed = tuple(o for o in self._armed if o != oid)
        self._observed.pop(oid, None)
        insort(self._free_slots, slot)

    def arm_observation(self, oids) -> None:
        """Sample these observers on the final commit of the next run."""
        unknown = [oid for oid in oids if oid not in self._observer_slots]
        if unknown:
            raise SimulationError(f"unknown observers: {unknown}")
        self._armed = tuple(oids)

    def disarm_observation(self) -> None:
        """Stop piggybacking observer samples on run commits."""
        self._armed = ()

    def observer_sample(self, oid: str, now: float) -> Optional[float]:
        """One observer's reading at ``now`` (must be the current time).

        Served from the piggyback cache when the final commit of the
        last run sampled this observer at exactly ``now``; otherwise an
        explicit ``("sample")`` frame goes to the owning shard, flushing
        that shard's queued ops first — the serial reap-then-sample
        ordering around attack bursts.
        """
        info = self._observer_slots.get(oid)
        if info is None:
            raise SimulationError(f"unknown observer: {oid}")
        if self._observed_at == now and oid in self._observed:
            return self._observed[oid]
        if now != self.clock.now:
            raise SimulationError(
                f"observers sample at the current virtual time only:"
                f" asked {now}, now {self.clock.now}"
            )
        shard, slot = info
        bank = self._next_bank()
        self._request(
            shard, ("sample", bank, (oid,), self._take_ops_for(shard))
        )
        value = self.plane.read_observer(bank, slot)
        self.ipc.shm_observer_bytes += 8
        if self._observed_at != now:
            self._observed = {}
            self._observed_at = now
        self._observed[oid] = value
        return value

    def observer_degradation(self, oid: str) -> dict:
        """A shard-resident monitor's degradation summary."""
        info = self._observer_slots.get(oid)
        if info is None:
            raise SimulationError(f"unknown observer: {oid}")
        return self._request(info[0], ("degradation", oid))

    def billing_meters(self) -> Dict[str, Tuple[int, int]]:
        """cpuacct meters of every live instance, merged across shards.

        Flushes each shard's queued ops first so meters reflect the same
        instance state a serial caller would observe.
        """
        meters: Dict[str, Tuple[int, int]] = {}
        n = len(self.conns)
        for part in self._exchange(
            [("meters", self._take_ops_for(i)) for i in range(n)]
        ):
            meters.update(part)
        return meters

    def debug_crash_worker(self, idx: int) -> None:
        """Test hook: make one worker exit abruptly (no reply, no cleanup)."""
        self._post(idx, ("crash",))

    def debug_hang_worker(self, idx: int, seconds: float) -> None:
        """Test hook: stall the worker's *next* reply by ``seconds``.

        Exercises the barrier-timeout path without real wedging: the
        worker still processes the frame correctly, it just sleeps
        before replying, so a supervisor that respawns it loses no
        state.
        """
        self._request(idx, ("hang", float(seconds)))

    # -- queries ---------------------------------------------------------

    def server_watts(self) -> Dict[int, float]:
        """Current wall watts per global server index (one round trip)."""
        bank = self._next_bank()
        self._broadcast(("watts", bank))
        self.ipc.shm_row_bytes += self.plane.row_bytes
        return {
            i: self.plane.read_wall(bank, i)
            for i in range(self.total_servers)
        }

    def breaker_states(self) -> List[BreakerSnapshot]:
        """Rack breaker snapshots in global rack order (one round trip)."""
        snapshots = []
        for part in self._broadcast(("state",)):
            for rack_index, name, tripped, tripped_at, trips in part["breakers"]:
                snapshots.append(
                    BreakerSnapshot(
                        rack_index=rack_index,
                        name=name,
                        tripped=tripped,
                        tripped_at=tripped_at,
                        trip_count=trips,
                    )
                )
        snapshots.sort(key=lambda snapshot: snapshot.rack_index)
        return snapshots

    def fault_stats(self) -> Dict[str, int]:
        """Merged fault counters: every shard's plus the driver's own."""
        merged: Dict[str, int] = {}
        for part in self._broadcast(("state",)):
            for key, value in part["stats"].items():
                merged[key] = merged.get(key, 0) + value
        if self.faults is not None:
            for key, value in self.faults.stats.as_dict().items():
                merged[key] = merged.get(key, 0) + value
        return dict(sorted(merged.items()))

    def trace_health(self) -> Dict[str, dict]:
        """Per-worker tracer drop/spill accounting, keyed ``shard-N``.

        One ``state`` barrier round trip — call at export/close time,
        not from the ops server thread (the driver pipe protocol is
        single-threaded request/reply).
        """
        health: Dict[str, dict] = {}
        for idx, part in enumerate(self._broadcast(("state",))):
            tracer = part.get("tracer")
            if tracer is not None:
                health[f"shard-{idx}"] = tracer
        return health

    @property
    def restart_log(self) -> List[int]:
        """Respawns used per shard (the ``/status`` restart budget view)."""
        return list(self._restarts)

    @property
    def max_restarts(self) -> int:
        """Respawn budget per shard (0 when supervision is off)."""
        return self._max_restarts

    @property
    def checkpoint_seq(self) -> int:
        """Latest committed checkpoint generation (0 before the first)."""
        return self._ckpt_seq

    def close(self) -> None:
        """Shut the workers down; the engine is unusable afterwards.

        Never hangs on a dead or wedged worker: close frames are
        best-effort, joins are bounded, survivors are terminated then
        killed, and the shared-memory segment is unlinked in a
        ``finally`` so no run — clean or crashed — leaks it.
        """
        if self._closed:
            return
        self._closed = True
        try:
            for conn in self.conns:
                try:
                    conn.send_bytes(_dumps(("close",)))
                except (BrokenPipeError, OSError):
                    pass
            for proc in self.procs:
                proc.join(timeout=10)
                if proc.is_alive():  # pragma: no cover - defensive
                    proc.terminate()
                    proc.join(timeout=5)
                    if proc.is_alive():
                        proc.kill()
            for conn in self.conns:
                conn.close()
        finally:
            try:
                if self.plane is not None:
                    self.plane.unlink()
            finally:
                if self.cplane is not None:
                    self.cplane.unlink()
