"""Lightweight instrumentation counters for the simulation hot path.

The fleet experiments advance millions of kernel ticks; knowing *where*
those ticks go (how many were coalesced away, how much wall time each
kernel subsystem consumed) is what turns "the simulator feels slow" into
an actionable profile. Counters are plain attributes so the per-tick
update cost stays negligible; the optional per-subsystem wall timers are
off by default and only engaged when a driver explicitly enables them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class IpcMetrics:
    """IPC accounting for one rack-sharded parallel run.

    Maintained by the parallel driver (``repro.sim.parallel``): control
    frames are the pickled command/reply tuples on the shard pipes, and
    shared-memory bytes are the float64 slots the telemetry plane carried
    instead of pickled rows. ``barrier_wait_s`` is the driver's cumulative
    wall time blocked waiting for each shard's reply — the lock-step
    straggler profile.
    """

    #: pickled bytes sent to shards (command frames)
    control_bytes_sent: int = 0
    #: pickled bytes received from shards (reply frames)
    control_bytes_received: int = 0
    #: command frames sent (one per shard per barrier)
    control_frames: int = 0
    #: float64 bytes of sample rows carried by the shared-memory plane
    shm_row_bytes: int = 0
    #: float64 bytes of attack-observer readings carried by the plane
    shm_observer_bytes: int = 0
    #: allocated size of the shared-memory segment
    shm_segment_bytes: int = 0
    #: shard worker count
    workers: int = 0
    #: shard index -> cumulative driver wall seconds blocked in recv
    barrier_wait_s: Dict[int, float] = field(default_factory=dict)

    def record_frame(self, sent: int, received: int) -> None:
        """Account one control round trip's pickled byte counts."""
        self.control_frames += 1
        self.control_bytes_sent += sent
        self.control_bytes_received += received

    def record_barrier_wait(self, shard: int, seconds: float) -> None:
        """Charge driver wall time spent blocked on one shard's reply."""
        self.barrier_wait_s[shard] = self.barrier_wait_s.get(shard, 0.0) + seconds

    @property
    def control_bytes(self) -> int:
        """Total pickled bytes over the pipes, both directions."""
        return self.control_bytes_sent + self.control_bytes_received

    @property
    def shm_bytes(self) -> int:
        """Total payload bytes carried by the shared-memory plane."""
        return self.shm_row_bytes + self.shm_observer_bytes

    def bytes_per_tick(self, ticks: int) -> float:
        """Mean IPC payload bytes (pipes + plane) per executed tick."""
        if ticks <= 0:
            return 0.0
        return (self.control_bytes + self.shm_bytes) / ticks

    @property
    def barrier_wait_total_s(self) -> float:
        """Driver wall seconds blocked at barriers, summed over shards."""
        return sum(self.barrier_wait_s.values())

    def render(self) -> str:
        """A human-readable IPC summary block."""
        lines = [
            f"control frames      {self.control_frames}"
            f" ({self.control_bytes_sent} B out,"
            f" {self.control_bytes_received} B in)",
            f"shm payload bytes   {self.shm_bytes}"
            f" (rows {self.shm_row_bytes}, observers {self.shm_observer_bytes};"
            f" segment {self.shm_segment_bytes} B)",
            f"barrier wait        {self.barrier_wait_total_s:.3f}s over"
            f" {self.workers} shard(s)",
        ]
        return "\n".join(lines)


class SubsystemTimings:
    """Accumulated wall-clock seconds per kernel subsystem.

    One instance may be shared by many kernels (a fleet); the totals then
    profile the whole simulation rather than one host.
    """

    def __init__(self) -> None:
        self.wall_s: Dict[str, float] = {}

    def add(self, name: str, seconds: float) -> None:
        """Charge ``seconds`` of wall time to ``name``."""
        self.wall_s[name] = self.wall_s.get(name, 0.0) + seconds

    def total(self) -> float:
        """Wall seconds across all subsystems."""
        return sum(self.wall_s.values())

    def ranked(self):
        """(name, seconds) pairs, most expensive first."""
        return sorted(self.wall_s.items(), key=lambda kv: kv[1], reverse=True)

    def render(self) -> str:
        """A small human-readable profile table."""
        total = self.total()
        if total <= 0:
            return "(no subsystem timings recorded)"
        lines = []
        for name, seconds in self.ranked():
            lines.append(
                f"  {name:<12} {seconds * 1e3:9.1f} ms  {seconds / total * 100:5.1f}%"
            )
        return "\n".join(lines)


@dataclass
class SimMetrics:
    """Counters describing one driver's tick economy.

    ``reference_ticks`` is how many ticks a per-``dt`` (non-coalescing)
    driver would have executed for the same virtual time; comparing it to
    ``ticks`` gives the coalescing win.
    """

    #: ticks actually executed
    ticks: int = 0
    #: ticks taken at the base dt (including stabilizing ticks)
    base_ticks: int = 0
    #: ticks that covered more than one base dt
    coalesced_ticks: int = 0
    #: virtual seconds advanced in total
    virtual_seconds: float = 0.0
    #: virtual seconds covered by coalesced ticks
    coalesced_seconds: float = 0.0
    #: ticks a per-dt reference driver would have executed
    reference_ticks: float = 0.0
    #: power-trace samples recorded
    samples: int = 0
    #: wall-clock seconds spent inside run()
    wall_seconds: float = 0.0
    #: optional per-subsystem wall profile (shared across a fleet's kernels)
    subsystem_timings: Optional[SubsystemTimings] = None
    #: IPC accounting, populated by the rack-sharded parallel driver
    ipc: Optional[IpcMetrics] = None

    def record_tick(self, step: float, base_dt: float) -> None:
        """Account one executed tick of ``step`` virtual seconds."""
        self.ticks += 1
        self.virtual_seconds += step
        self.reference_ticks += step / base_dt
        if step > base_dt * 1.000001:
            self.coalesced_ticks += 1
            self.coalesced_seconds += step
        else:
            self.base_ticks += 1

    @property
    def tick_reduction(self) -> float:
        """How many reference ticks each executed tick replaced (>= 1)."""
        if self.ticks == 0:
            return 1.0
        return self.reference_ticks / self.ticks

    @property
    def coalescing_fraction(self) -> float:
        """Fraction of virtual time advanced by coalesced ticks."""
        if self.virtual_seconds <= 0:
            return 0.0
        return self.coalesced_seconds / self.virtual_seconds

    def render(self) -> str:
        """A human-readable summary block."""
        lines = [
            f"ticks executed      {self.ticks}"
            f" (base {self.base_ticks}, coalesced {self.coalesced_ticks})",
            f"virtual seconds     {self.virtual_seconds:.0f}"
            f" ({self.coalescing_fraction * 100:.1f}% coalesced)",
            f"reference ticks     {self.reference_ticks:.0f}",
            f"tick reduction      {self.tick_reduction:.1f}x",
            f"samples recorded    {self.samples}",
            f"wall seconds        {self.wall_seconds:.2f}",
        ]
        if self.subsystem_timings is not None:
            lines.append("subsystem wall profile:")
            lines.append(self.subsystem_timings.render())
        if self.ipc is not None:
            lines.append("parallel IPC profile:")
            lines.append(self.ipc.render())
        return "\n".join(lines)


class WallTimer:
    """Context manager adding elapsed wall time to ``metrics.wall_seconds``."""

    def __init__(self, metrics: SimMetrics):
        self.metrics = metrics
        self._t0 = 0.0

    def __enter__(self) -> "WallTimer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.metrics.wall_seconds += time.perf_counter() - self._t0
