"""Simulation instrumentation facades over :mod:`repro.obs.registry`.

The fleet experiments advance millions of kernel ticks; knowing *where*
those ticks go (how many were coalesced away, how much wall time each
kernel subsystem consumed, what the parallel barriers cost) is what
turns "the simulator feels slow" into an actionable profile.

Historically ``SimMetrics``/``IpcMetrics``/``SubsystemTimings`` were
three disconnected ad-hoc classes. They are now thin facades over typed
:class:`~repro.obs.registry.MetricRegistry` instruments — same attribute
APIs and byte-identical ``render()`` output as before, but every number
also lives in one queryable registry (``sim.metrics.registry``) that the
``repro metrics`` CLI and exporters read uniformly. Hot-path cost is
unchanged: each facade resolves its instruments once at construction and
per-tick updates remain plain attribute arithmetic.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.obs.registry import MetricRegistry

#: bucket bounds for executed-tick sizes (virtual seconds)
STEP_BOUNDS = (1.0, 2.0, 5.0, 15.0, 60.0, 300.0, 1800.0, 7200.0)

#: bucket bounds for per-frame driver barrier waits (wall seconds)
BARRIER_BOUNDS = (1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0)

#: bucket bounds for worker doorbell-poll waits (wall seconds) — the
#: shm control plane's spin window sits under the first few buckets
DOORBELL_BOUNDS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1)

#: retained per-tick round-trip samples for the p50 estimate (bounded
#: so week-long campaigns cannot grow driver memory)
_ROUND_TRIP_CAP = 65536


class IpcMetrics:
    """IPC accounting for one rack-sharded parallel run.

    Maintained by the parallel driver (``repro.sim.parallel``): control
    frames are the pickled command/reply tuples on the shard pipes, and
    shared-memory bytes are the float64 slots the telemetry plane carried
    instead of pickled rows. ``barrier_wait_s`` is the driver's cumulative
    wall time blocked waiting for each shard's reply — the lock-step
    straggler profile.
    """

    def __init__(
        self,
        control_bytes_sent: int = 0,
        control_bytes_received: int = 0,
        control_frames: int = 0,
        shm_row_bytes: int = 0,
        shm_observer_bytes: int = 0,
        shm_segment_bytes: int = 0,
        workers: int = 0,
        registry: Optional[MetricRegistry] = None,
    ):
        self.registry = registry if registry is not None else MetricRegistry()
        r = self.registry
        self._sent = r.counter(
            "ipc.control_bytes_sent", "pickled bytes sent to shards"
        )
        self._received = r.counter(
            "ipc.control_bytes_received", "pickled bytes received from shards"
        )
        self._frames = r.counter(
            "ipc.control_frames", "command frames sent (one per shard per barrier)"
        )
        self._row_bytes = r.counter(
            "ipc.shm_row_bytes", "float64 sample-row bytes on the shm plane"
        )
        self._observer_bytes = r.counter(
            "ipc.shm_observer_bytes", "float64 observer bytes on the shm plane"
        )
        self._segment = r.gauge(
            "ipc.shm_segment_bytes", "allocated shared-memory segment size"
        )
        self._workers = r.gauge("ipc.workers", "shard worker count")
        self._frame_wait = r.histogram(
            "ipc.barrier_wait_per_frame_s",
            "driver wall seconds blocked per shard reply",
            bounds=BARRIER_BOUNDS,
        )
        self._shm_frames = r.counter(
            "ipc.shm_control_frames",
            "control round trips carried by the shm slot plane",
        )
        self._shm_control = r.counter(
            "ipc.shm_control_bytes",
            "control-slot bytes on the shm plane, both directions",
        )
        self._doorbell = r.histogram(
            "ipc.doorbell_wait_s",
            "worker wall seconds polling the request doorbell per frame",
            bounds=DOORBELL_BOUNDS,
        )
        #: per-tick barrier round trips (epoch-amortized), capped
        self._round_trips: List[float] = []
        #: shard index -> per-shard cumulative-wait counter
        self._barrier: Dict[int, object] = {}
        self._sent.value += control_bytes_sent
        self._received.value += control_bytes_received
        self._frames.value += control_frames
        self._row_bytes.value += shm_row_bytes
        self._observer_bytes.value += shm_observer_bytes
        self._segment.value = shm_segment_bytes
        self._workers.value = workers

    # attribute facade: reads and ``+=`` hit the registry instruments

    @property
    def control_bytes_sent(self) -> int:
        return self._sent.value

    @control_bytes_sent.setter
    def control_bytes_sent(self, value: int) -> None:
        self._sent.value = value

    @property
    def control_bytes_received(self) -> int:
        return self._received.value

    @control_bytes_received.setter
    def control_bytes_received(self, value: int) -> None:
        self._received.value = value

    @property
    def control_frames(self) -> int:
        return self._frames.value

    @control_frames.setter
    def control_frames(self, value: int) -> None:
        self._frames.value = value

    @property
    def shm_row_bytes(self) -> int:
        return self._row_bytes.value

    @shm_row_bytes.setter
    def shm_row_bytes(self, value: int) -> None:
        self._row_bytes.value = value

    @property
    def shm_observer_bytes(self) -> int:
        return self._observer_bytes.value

    @shm_observer_bytes.setter
    def shm_observer_bytes(self, value: int) -> None:
        self._observer_bytes.value = value

    @property
    def shm_segment_bytes(self) -> int:
        return self._segment.value

    @shm_segment_bytes.setter
    def shm_segment_bytes(self, value: int) -> None:
        self._segment.value = value

    @property
    def workers(self) -> int:
        return self._workers.value

    @workers.setter
    def workers(self, value: int) -> None:
        self._workers.value = value

    @property
    def barrier_wait_s(self) -> Dict[int, float]:
        """Shard index -> cumulative driver wall seconds blocked in recv."""
        return {shard: c.value for shard, c in self._barrier.items()}

    def record_frame(self, sent: int, received: int) -> None:
        """Account one control round trip's pickled byte counts."""
        self._frames.value += 1
        self._sent.value += sent
        self._received.value += received

    def record_shm_frame(self, sent: int, received: int) -> None:
        """Account one control round trip carried by the shm slots."""
        self._shm_frames.value += 1
        self._shm_control.value += sent + received

    def record_doorbell_wait(self, seconds: float) -> None:
        """One worker-side doorbell poll wait (from the reply slot)."""
        self._doorbell.observe(seconds)

    def record_barrier_wait(
        self, shard: int, seconds: float, ticks: int = 1
    ) -> None:
        """Charge driver wall time spent blocked on one shard's reply.

        ``ticks > 1`` marks a batched epoch reply: the round trip is
        amortized over its ticks in the p50 sample so the latency
        profile stays comparable across epoch sizes.
        """
        counter = self._barrier.get(shard)
        if counter is None:
            counter = self._barrier[shard] = self.registry.counter(
                "ipc.barrier_wait_s",
                "cumulative driver wall seconds blocked in recv",
                shard=shard,
            )
        counter.value += seconds
        self._frame_wait.observe(seconds)
        if len(self._round_trips) < _ROUND_TRIP_CAP:
            self._round_trips.append(seconds / max(1, ticks))

    @property
    def pipe_control_frames(self) -> int:
        """Control round trips that used a pickled pipe frame.

        Zero at steady state under the shm control plane — the CI gate
        in ``benchmarks/bench_parallel.py`` enforces it.
        """
        return self._frames.value

    @property
    def shm_control_frames(self) -> int:
        """Control round trips carried entirely by the shm slot plane."""
        return self._shm_frames.value

    @property
    def shm_control_bytes(self) -> int:
        """Control-slot bytes on the shm plane, both directions."""
        return self._shm_control.value

    @property
    def round_trip_p50(self) -> float:
        """Median per-tick barrier round trip, epoch-amortized (wall s)."""
        if not self._round_trips:
            return 0.0
        ordered = sorted(self._round_trips)
        return ordered[len(ordered) // 2]

    def frame_wait_quantile(self, q: float) -> float:
        """Quantile of driver wall seconds blocked per shard reply.

        Backed by the ``ipc.barrier_wait_per_frame_s`` histogram, so it
        covers every frame since startup (no reservoir cap) and is what
        ``render`` and the ops ``/status`` endpoint report.
        """
        return self._frame_wait.quantile(q)

    @property
    def barrier_wait_skew(self) -> float:
        """Max/median of per-shard cumulative barrier waits.

        The lock-step straggler factor: 1.0 means perfectly balanced
        shards; large values quantify the work-stealing opportunity the
        ROADMAP names (one slow shard stalls every barrier).
        """
        waits = sorted(self.barrier_wait_s.values())
        if not waits:
            return 0.0
        median = waits[len(waits) // 2]
        if median <= 0:
            return 0.0
        return waits[-1] / median

    @property
    def control_bytes(self) -> int:
        """Total pickled bytes over the pipes, both directions."""
        return self.control_bytes_sent + self.control_bytes_received

    @property
    def shm_bytes(self) -> int:
        """Total payload bytes carried by the shared-memory plane."""
        return self.shm_row_bytes + self.shm_observer_bytes

    def bytes_per_tick(self, ticks: int) -> float:
        """Mean IPC payload bytes (pipes + plane) per executed tick.

        ``ticks <= 0`` (a run that never executed — e.g. metrics queried
        before the first barrier) reports 0.0 rather than dividing.
        """
        if ticks <= 0:
            return 0.0
        return (
            self.control_bytes + self.shm_control_bytes + self.shm_bytes
        ) / ticks

    @property
    def barrier_wait_total_s(self) -> float:
        """Driver wall seconds blocked at barriers, summed over shards."""
        return sum(c.value for c in self._barrier.values())

    def render(self) -> str:
        """A human-readable IPC summary block."""
        lines = [
            f"control frames      {self.control_frames}"
            f" ({self.control_bytes_sent} B out,"
            f" {self.control_bytes_received} B in)",
            f"shm payload bytes   {self.shm_bytes}"
            f" (rows {self.shm_row_bytes}, observers {self.shm_observer_bytes};"
            f" segment {self.shm_segment_bytes} B)",
            f"barrier wait        {self.barrier_wait_total_s:.3f}s over"
            f" {self.workers} shard(s)",
            f"shm control         {self.shm_control_frames} frame(s)"
            f" ({self.shm_control_bytes} B slots)",
            f"barrier p50/tick    {self.round_trip_p50 * 1e6:.0f}us"
            f" (frame p50/p90/p99"
            f" {self.frame_wait_quantile(0.5) * 1e6:.0f}/"
            f"{self.frame_wait_quantile(0.9) * 1e6:.0f}/"
            f"{self.frame_wait_quantile(0.99) * 1e6:.0f}us)",
        ]
        return "\n".join(lines)


class SubsystemTimings:
    """Accumulated wall-clock seconds per kernel subsystem.

    One instance may be shared by many kernels (a fleet); the totals then
    profile the whole simulation rather than one host. Each subsystem is
    a ``subsystem.wall_s{subsystem=<name>}`` registry counter; ``add`` is
    on the per-tick hot path, so the name->counter map is cached locally
    and charging stays one dict probe plus one attribute add.
    """

    def __init__(self, registry: Optional[MetricRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricRegistry()
        self._counters: Dict[str, object] = {}

    def add(self, name: str, seconds: float) -> None:
        """Charge ``seconds`` of wall time to ``name``."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = self.registry.counter(
                "subsystem.wall_s",
                "wall seconds charged to one kernel subsystem",
                subsystem=name,
            )
        counter.value += seconds

    @property
    def wall_s(self) -> Dict[str, float]:
        """Subsystem name -> accumulated wall seconds."""
        return {name: c.value for name, c in self._counters.items()}

    def total(self) -> float:
        """Wall seconds across all subsystems."""
        return sum(c.value for c in self._counters.values())

    def ranked(self):
        """(name, seconds) pairs, most expensive first."""
        return sorted(self.wall_s.items(), key=lambda kv: kv[1], reverse=True)

    def render(self) -> str:
        """A small human-readable profile table.

        An empty or all-zero profile renders a placeholder line instead
        of dividing by a zero total.
        """
        total = self.total()
        if total <= 0:
            return "(no subsystem timings recorded)"
        lines = []
        for name, seconds in self.ranked():
            lines.append(
                f"  {name:<12} {seconds * 1e3:9.1f} ms  {seconds / total * 100:5.1f}%"
            )
        return "\n".join(lines)


class SimMetrics:
    """Counters describing one driver's tick economy.

    ``reference_ticks`` is how many ticks a per-``dt`` (non-coalescing)
    driver would have executed for the same virtual time; comparing it to
    ``ticks`` gives the coalescing win. The facade keeps the historical
    plain-attribute API; the backing instruments (``sim.*``) live in
    ``self.registry`` alongside whatever the parallel driver and kernel
    profiler register there.
    """

    def __init__(self, registry: Optional[MetricRegistry] = None):
        self.registry = registry if registry is not None else MetricRegistry()
        r = self.registry
        self._ticks = r.counter("sim.ticks", "ticks actually executed")
        self._base_ticks = r.counter(
            "sim.base_ticks", "ticks taken at the base dt"
        )
        self._coalesced_ticks = r.counter(
            "sim.coalesced_ticks", "ticks that covered more than one base dt"
        )
        self._virtual_seconds = r.counter(
            "sim.virtual_seconds", "virtual seconds advanced in total"
        )
        self._coalesced_seconds = r.counter(
            "sim.coalesced_seconds", "virtual seconds covered by coalesced ticks"
        )
        self._reference_ticks = r.counter(
            "sim.reference_ticks", "ticks a per-dt reference driver would run"
        )
        self._samples = r.counter("sim.samples", "power-trace samples recorded")
        self._wall_seconds = r.counter(
            "sim.wall_seconds", "wall-clock seconds spent inside run()"
        )
        self._step_hist = r.histogram(
            "sim.step_s", "executed tick sizes (virtual s)", bounds=STEP_BOUNDS
        )
        # float totals start at 0.0 so facade reads keep their old types
        self._virtual_seconds.value = 0.0
        self._coalesced_seconds.value = 0.0
        self._reference_ticks.value = 0.0
        self._wall_seconds.value = 0.0
        #: optional per-subsystem wall profile (shared across a fleet)
        self.subsystem_timings: Optional[SubsystemTimings] = None
        #: IPC accounting, populated by the rack-sharded parallel driver
        self.ipc: Optional[IpcMetrics] = None

    @property
    def ticks(self) -> int:
        return self._ticks.value

    @ticks.setter
    def ticks(self, value: int) -> None:
        self._ticks.value = value

    @property
    def base_ticks(self) -> int:
        return self._base_ticks.value

    @base_ticks.setter
    def base_ticks(self, value: int) -> None:
        self._base_ticks.value = value

    @property
    def coalesced_ticks(self) -> int:
        return self._coalesced_ticks.value

    @coalesced_ticks.setter
    def coalesced_ticks(self, value: int) -> None:
        self._coalesced_ticks.value = value

    @property
    def virtual_seconds(self) -> float:
        return self._virtual_seconds.value

    @virtual_seconds.setter
    def virtual_seconds(self, value: float) -> None:
        self._virtual_seconds.value = value

    @property
    def coalesced_seconds(self) -> float:
        return self._coalesced_seconds.value

    @coalesced_seconds.setter
    def coalesced_seconds(self, value: float) -> None:
        self._coalesced_seconds.value = value

    @property
    def reference_ticks(self) -> float:
        return self._reference_ticks.value

    @reference_ticks.setter
    def reference_ticks(self, value: float) -> None:
        self._reference_ticks.value = value

    @property
    def samples(self) -> int:
        return self._samples.value

    @samples.setter
    def samples(self, value: int) -> None:
        self._samples.value = value

    @property
    def wall_seconds(self) -> float:
        return self._wall_seconds.value

    @wall_seconds.setter
    def wall_seconds(self, value: float) -> None:
        self._wall_seconds.value = value

    def record_tick(self, step: float, base_dt: float) -> None:
        """Account one executed tick of ``step`` virtual seconds."""
        self._ticks.value += 1
        self._virtual_seconds.value += step
        self._reference_ticks.value += step / base_dt
        self._step_hist.observe(step)
        if step > base_dt * 1.000001:
            self._coalesced_ticks.value += 1
            self._coalesced_seconds.value += step
        else:
            self._base_ticks.value += 1

    @property
    def tick_reduction(self) -> float:
        """How many reference ticks each executed tick replaced (>= 1)."""
        if self.ticks == 0:
            return 1.0
        return self.reference_ticks / self.ticks

    @property
    def coalescing_fraction(self) -> float:
        """Fraction of virtual time advanced by coalesced ticks."""
        if self.virtual_seconds <= 0:
            return 0.0
        return self.coalesced_seconds / self.virtual_seconds

    def render(self) -> str:
        """A human-readable summary block."""
        lines = [
            f"ticks executed      {self.ticks}"
            f" (base {self.base_ticks}, coalesced {self.coalesced_ticks})",
            f"virtual seconds     {self.virtual_seconds:.0f}"
            f" ({self.coalescing_fraction * 100:.1f}% coalesced)",
            f"reference ticks     {self.reference_ticks:.0f}",
            f"tick reduction      {self.tick_reduction:.1f}x",
            f"samples recorded    {self.samples}",
            f"wall seconds        {self.wall_seconds:.2f}",
        ]
        if self.subsystem_timings is not None:
            lines.append("subsystem wall profile:")
            lines.append(self.subsystem_timings.render())
        if self.ipc is not None:
            lines.append("parallel IPC profile:")
            lines.append(self.ipc.render())
        return "\n".join(lines)


class WallTimer:
    """Context manager adding elapsed wall time to ``metrics.wall_seconds``."""

    def __init__(self, metrics: SimMetrics):
        self.metrics = metrics
        self._t0 = 0.0

    def __enter__(self) -> "WallTimer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.metrics.wall_seconds += time.perf_counter() - self._t0
