"""Simulation core: virtual time, deterministic randomness, event scheduling.

Everything in the reproduction runs against a :class:`VirtualClock` — no
wall-clock time is ever consulted, so every experiment is deterministic and
can simulate a week of datacenter time in seconds.
"""

from repro.sim.clock import VirtualClock
from repro.sim.events import EventLoop, ScheduledEvent
from repro.sim.fastforward import FastForwardEngine, StabilityTracker
from repro.sim.metrics import SimMetrics, SubsystemTimings
from repro.sim.rng import DeterministicRNG

__all__ = [
    "VirtualClock",
    "DeterministicRNG",
    "EventLoop",
    "ScheduledEvent",
    "FastForwardEngine",
    "StabilityTracker",
    "SimMetrics",
    "SubsystemTimings",
]
