"""Adaptive tick coalescing: advance phase-stable stretches in one tick.

The Figure 2–4 experiments drive every kernel with per-second ticks for a
week of virtual time — millions of ticks whose subsystem updates are all
linear in ``dt`` while nothing about the admitted workload set changes.
This module detects those stretches and replaces the many small ticks
with one large coalesced ``tick(dt)``.

A coalesced step is legal only when the window it spans is *event free*:

1. **Workload-set stability** — no tenant arrivals/departures, no
   container exec/kill, no workload phase boundary inside the window.
   Enforced two ways: phase boundaries are reported as *horizons* (the
   engine never steps across one), and spawn/kill/exec churn is caught by
   the :class:`StabilityTracker` demand fingerprint, which forces one
   base-``dt`` "stabilizing" tick after any change so the subsequent
   power/ratio guards see state that reflects the current workload set.
2. **No pending trace sample** — a sample must observe a tick that *ends*
   at the sample time, so the next sample time is a horizon.
3. **No driver decision point** — tenant drivers and attack strategies
   report their next decision time (:meth:`next_event_time` /
   ``next_event_horizon``); the engine never skips one.
4. **No breaker near its trip knee** — the thermal trip integral is exact
   under constant load only while the overload ratio stays <= 1; drivers
   guard coalescing on every breaker being comfortably below rating (or
   already tripped) and fall back to base ticks during overloads, which
   preserves exact trip timing.
5. **Grid alignment** — coalesced steps are whole multiples of the base
   ``dt``, so every coalesced tick boundary is also a reference tick
   boundary and time-triggered events fire at identical virtual times.

Under these invariants every subsystem counter the power model consumes
is linear in ``dt``, so a coalesced run matches the per-second reference
within integer-truncation noise; ``tests/sim/test_fastforward_accuracy.py``
enforces the tolerance.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.metrics import SimMetrics

#: slack used when comparing float times that should sit on the dt grid
_EPS = 1e-9


def kernel_demand_fingerprint(kernel) -> float:
    """Total CPU demand (cores) of one kernel's runnable workload set.

    Any spawn, kill, exec, workload finish, or phase change moves this
    sum, so equal consecutive fingerprints mean the admitted workload set
    is unchanged since the previous tick was planned.
    """
    from repro.kernel.process import TaskState

    total = 0.0
    for task in kernel.scheduler.iter_tasks():
        workload = task.workload
        if (
            task.state is TaskState.RUNNING
            and workload is not None
            and not workload.finished
        ):
            total += workload.demand()
    return total


def kernel_phase_horizon_s(kernel) -> float:
    """Seconds until the earliest workload phase boundary on one kernel.

    ``math.inf`` when every running workload is in an unbounded phase.
    """
    horizon = math.inf
    for task in kernel.scheduler.iter_tasks():
        workload = task.workload
        if workload is None or workload.finished:
            continue
        boundary = workload.seconds_to_phase_boundary()
        if boundary is not None and boundary < horizon:
            horizon = boundary
    return horizon


class DriverHorizon:
    """A horizon source whose state lives entirely on the driver side.

    Horizon callables registered in ``DatacenterSimulation.horizon_sources``
    normally may observe host kernels, which in parallel mode live in shard
    workers — so the parallel driver rejects them. Wrapping a callable in
    ``DriverHorizon`` asserts that it reads only driver-held state (e.g. an
    attack strategy's scheduled next action time), making it legal to fold
    into the parallel horizon min-reduce. The serial path calls it like any
    other source.
    """

    __slots__ = ("fn",)

    #: the parallel driver folds sources carrying this marker
    parallel_safe = True

    def __init__(self, fn):
        self.fn = fn

    def __call__(self, now: float) -> float:
        return self.fn(now)


def fold_driver_horizons(now: float, sources) -> float:
    """Min over the parallel-safe horizon sources (``inf`` if none).

    The parallel driver's half of the horizon merge: shard workers reduce
    their host-observing horizons (tenant decisions, phase boundaries,
    fault barriers) worker-side, and the driver folds in the sources that
    are marked :class:`DriverHorizon`-safe, so the merged horizon equals
    the serial ``_coalesce_horizon`` fold value exactly (min is
    order-independent on floats).
    """
    horizon = math.inf
    for source in sources:
        if getattr(source, "parallel_safe", False):
            horizon = min(horizon, source(now))
    return horizon


class DecisionGrid:
    """An absolute-time decision grid: boundaries at ``k * interval_s``.

    Tenant demand adjustments are anchored to this grid rather than to
    ``last_adjust + interval`` so that a coalescing engine jumping several
    intervals in one tick lands on the *same* decision sequence as a
    fine-ticked run: boundary ``k`` exists at ``k * interval_s`` whether or
    not any tick happened to end there, and keyed draws (``burst@<k>``)
    address it by index. Both the scalar
    :class:`~repro.datacenter.tenants.DiurnalTenantDriver` and the
    columnar :class:`~repro.datacenter.population.TenantPopulation` share
    this arithmetic, which is part of the bit-identity contract between
    them.
    """

    __slots__ = ("interval_s",)

    def __init__(self, interval_s: float):
        if interval_s <= 0:
            raise SimulationError(f"grid interval must be positive: {interval_s}")
        self.interval_s = interval_s

    def index_at(self, now: float) -> int:
        """Index of the last boundary at or before ``now``."""
        return int(now // self.interval_s)

    def time_of(self, index: int) -> float:
        """Absolute virtual time of boundary ``index``."""
        return index * self.interval_s

    def next_boundary(self, now: float, pending_index: Optional[int] = None) -> float:
        """Strictly-future decision time as seen from ``now``.

        ``pending_index`` is the caller's next unprocessed boundary; when
        it is already past ``now`` (the caller has caught up), that
        boundary is the answer. Otherwise the next grid point after
        ``now``. The result is always ``> now``, so a coalescing engine
        is never handed a zero-length horizon.
        """
        index = self.index_at(now)
        if pending_index is not None and pending_index > index:
            return self.time_of(pending_index)
        return self.time_of(index + 1)


class StabilityTracker:
    """Detects whether the workload set changed since the last planned tick.

    The tracker is fed a fingerprint once per planning decision; a
    coalesced step is only offered when the fingerprint equals the one
    observed at the previous decision, i.e. when at least one tick has
    already executed against the current workload set. That guarantees
    ``last_tick``-derived quantities (wall power, breaker ratios) that
    guards consult describe the load the coalesced window will actually
    carry.
    """

    def __init__(self) -> None:
        self._last: Optional[Tuple] = None

    def observe(self, fingerprint: Tuple) -> bool:
        """Feed the current fingerprint; returns True when stable."""
        stable = fingerprint == self._last
        self._last = fingerprint
        return stable

    def peek(self, fingerprint: Tuple) -> bool:
        """:meth:`observe`'s answer without recording the fingerprint.

        Batched epoch planners use this to *decide* whether a candidate
        tick is stable before committing to include it: a rejected tick
        must leave the tracker exactly as it was (recording it would
        clobber a fresh :meth:`reset` and skew the next real observe).
        """
        return fingerprint == self._last

    def reset(self) -> None:
        """Forget history (forces a stabilizing tick next plan)."""
        self._last = None

    def snapshot(self) -> Optional[Tuple]:
        """The last observed fingerprint, for checkpoint manifests."""
        return self._last

    def restore(self, state: Optional[Tuple]) -> None:
        """Restore a :meth:`snapshot` value on campaign resume."""
        self._last = state


class FastForwardEngine:
    """Plans tick sizes: base ``dt`` near events, large steps in between.

    Parameters
    ----------
    max_step_s:
        Upper bound on a single coalesced step, bounding how long the
        simulation can go without re-evaluating guards.
    """

    def __init__(self, max_step_s: float = 3600.0):
        if max_step_s <= 0:
            raise SimulationError(f"max_step_s must be positive: {max_step_s}")
        self.max_step_s = max_step_s
        self.stability = StabilityTracker()
        self.metrics = SimMetrics()

    def plan_step(
        self,
        now: float,
        remaining: float,
        base_dt: float,
        *,
        horizon: float = math.inf,
        stable: bool = True,
    ) -> float:
        """The next tick size in virtual seconds.

        ``horizon`` is the absolute virtual time of the next event the
        window must not cross (the engine may step exactly *to* it);
        ``stable`` is the conjunction of the caller's safety guards.
        Returns ``min(base_dt, remaining)`` whenever coalescing is not
        both safe and worthwhile; otherwise a multiple of ``base_dt``.
        """
        if base_dt <= 0:
            raise SimulationError(f"base dt must be positive: {base_dt}")
        base = min(base_dt, remaining)
        if not stable:
            return base
        limit = min(remaining, self.max_step_s, horizon - now)
        # Align to the base-dt grid so coalesced boundaries are a subset
        # of the reference driver's boundaries (invariant 5).
        steps = math.floor(limit / base_dt + _EPS)
        if steps <= 1:
            return base
        return steps * base_dt

    @staticmethod
    def min_horizon(now: float, horizons: Iterable[float]) -> float:
        """The nearest of several absolute event times (``inf`` if none)."""
        nearest = math.inf
        for h in horizons:
            if h < nearest:
                nearest = h
        return max(nearest, now)
