"""Deterministic fault injection for the simulated substrate.

The paper's power attack and defense run for days on real clouds where
sensors glitch, hosts reboot, and ``/proc``/``/sys`` reads intermittently
fail. This module gives the reproduction the same hostile substrate,
*deterministically*: a :class:`FaultSchedule` of timestamped
:class:`FaultEvent` s is generated from a seed (via
:class:`repro.sim.rng.DeterministicRNG` — never wall-clock randomness) and
replayed against the simulation clock by a :class:`FaultInjector`.

Fault taxonomy (see ``docs/faults.md`` for the degradation contracts):

- **RAPL counter faults** — stuck (counter freezes), dropped (reads raise
  ``EIO``), garbage (reads return uniform junk), and spurious wraparound
  (one displaced reading, which consumers see as a wrap).
- **Pseudo-file read faults** — transient ``EIO`` on reads matching a
  glob under ``/proc`` or ``/sys`` for a bounded window.
- **Machine crash/restart** — a server goes dark (no ticks, no wall
  power, trace gap) and reboots after a downtime window.
- **Container OOM kill** — the most recently started non-init task of
  one container is killed, as the OOM killer would.
- **Clock jitter** — recorded trace-sample timestamps wobble around the
  nominal sampling grid for a window.
- **Forced breaker trip** — a rack breaker opens (operator error, ground
  fault) and recloses after a downtime window.

Determinism rules:

1. All randomness derives from the schedule/injector seed through named
   :class:`DeterministicRNG` streams; two runs with equal seeds replay
   bit-identical faults.
2. Random draws happen per *event* or per *trace sample*, never per
   simulation tick, so a coalescing driver consumes the same draws as a
   per-``dt`` reference driver.
3. Generated event times (and durations) snap to the base-``dt`` grid,
   and every fault boundary is a **barrier** for the fast-forward engine
   (:meth:`FaultInjector.next_barrier`): a coalesced tick may end exactly
   at a fault boundary but never step across one.
"""

from __future__ import annotations

import enum
import fnmatch
import math
from dataclasses import dataclass, field, replace as dataclass_replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SimulationError, TransientReadError
from repro.sim.rng import DeterministicRNG

_EPS = 1e-9

#: pseudo-files a flaky host plausibly fails to serve (the generator
#: picks targets from this pool)
DEFAULT_EIO_PATHS: Tuple[str, ...] = (
    "/proc/uptime",
    "/proc/stat",
    "/proc/meminfo",
    "/proc/sys/kernel/random/boot_id",
    "/sys/class/powercap/*",
    "/sys/class/net/*",
)


class FaultKind(enum.Enum):
    """The injectable fault types."""

    RAPL_STUCK = "rapl-stuck"
    RAPL_DROP = "rapl-drop"
    RAPL_GARBAGE = "rapl-garbage"
    RAPL_WRAP = "rapl-wrap"
    PSEUDO_EIO = "pseudo-eio"
    MACHINE_CRASH = "machine-crash"
    OOM_KILL = "oom-kill"
    CLOCK_JITTER = "clock-jitter"
    BREAKER_TRIP = "breaker-trip"


#: fault kinds whose effect spans ``duration_s`` (the rest are one-shot)
WINDOWED_KINDS = frozenset(
    {
        FaultKind.RAPL_STUCK,
        FaultKind.RAPL_DROP,
        FaultKind.RAPL_GARBAGE,
        FaultKind.PSEUDO_EIO,
        FaultKind.MACHINE_CRASH,
        FaultKind.CLOCK_JITTER,
        FaultKind.BREAKER_TRIP,
    }
)

#: fault kinds that target one host and therefore need its per-object
#: kernel live (a cold columnar host materializes before these apply)
_HOST_SCOPED_KINDS = frozenset(
    {
        FaultKind.RAPL_STUCK,
        FaultKind.RAPL_DROP,
        FaultKind.RAPL_GARBAGE,
        FaultKind.RAPL_WRAP,
        FaultKind.PSEUDO_EIO,
        FaultKind.MACHINE_CRASH,
        FaultKind.OOM_KILL,
    }
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``server`` indexes the target host for host-scoped kinds and the
    target *rack* for :attr:`FaultKind.BREAKER_TRIP`; ``path_glob`` is the
    target pattern for :attr:`FaultKind.PSEUDO_EIO`; ``magnitude`` is the
    jitter standard deviation (as a fraction of the sampling interval)
    for :attr:`FaultKind.CLOCK_JITTER`.
    """

    at: float
    kind: FaultKind
    duration_s: float = 0.0
    server: int = 0
    path_glob: Optional[str] = None
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise SimulationError(f"fault event before t=0: {self.at}")
        if self.duration_s < 0:
            raise SimulationError(f"negative fault duration: {self.duration_s}")
        if self.kind in WINDOWED_KINDS and self.duration_s <= 0:
            raise SimulationError(
                f"{self.kind.value} fault needs a positive duration"
            )
        if self.kind is FaultKind.PSEUDO_EIO and not self.path_glob:
            raise SimulationError("pseudo-eio fault needs a path glob")

    @property
    def until(self) -> float:
        """Absolute virtual time the fault's effect window ends."""
        return self.at + self.duration_s


@dataclass
class FaultStats:
    """Counters describing what was injected and how consumers degraded."""

    counts: Dict[str, int] = field(default_factory=dict)

    def count(self, key: str, n: int = 1) -> None:
        """Increment one counter."""
        self.counts[key] = self.counts.get(key, 0) + n

    def get(self, key: str) -> int:
        """Read one counter (0 if never incremented)."""
        return self.counts.get(key, 0)

    @property
    def total_injected(self) -> int:
        """Total fault events applied."""
        return sum(
            n for key, n in self.counts.items() if key.startswith("injected:")
        )

    def as_dict(self) -> Dict[str, int]:
        """A sorted plain-dict snapshot (for result records)."""
        return dict(sorted(self.counts.items()))

    def render(self) -> str:
        """Human-readable counter block."""
        if not self.counts:
            return "(no faults recorded)"
        return "\n".join(
            f"  {key:<28} {n}" for key, n in sorted(self.counts.items())
        )


class FaultSchedule:
    """A time-ordered list of fault events plus the seed that made it."""

    def __init__(self, events: Iterable[FaultEvent] = (), seed: int = 0):
        self.events: List[FaultEvent] = sorted(
            events, key=lambda e: (e.at, e.kind.value, e.server)
        )
        self.seed = int(seed)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def add(self, event: FaultEvent) -> None:
        """Insert one event, keeping the schedule ordered."""
        self.events.append(event)
        self.events.sort(key=lambda e: (e.at, e.kind.value, e.server))

    def events_between(self, t0: float, t1: float) -> List[FaultEvent]:
        """Events with ``t0 <= at < t1``."""
        return [e for e in self.events if t0 <= e.at < t1]

    def next_event_time(self, now: float) -> float:
        """Absolute time of the first event at or after ``now`` (inf if none)."""
        for event in self.events:
            if event.at >= now - _EPS:
                return max(event.at, now)
        return math.inf

    # ------------------------------------------------------------------

    @classmethod
    def generate(
        cls,
        seed: int,
        duration_s: float,
        servers: int = 1,
        racks: int = 1,
        *,
        grid_s: float = 1.0,
        rapl_per_day: float = 4.0,
        eio_per_day: float = 6.0,
        crashes_per_week: float = 1.0,
        oom_per_day: float = 2.0,
        jitter_per_day: float = 1.0,
        breaker_trips_per_week: float = 0.0,
        eio_paths: Sequence[str] = DEFAULT_EIO_PATHS,
    ) -> "FaultSchedule":
        """A seeded schedule with Poisson arrivals per fault family.

        Arrival times come from per-family exponential inter-arrival
        draws, then snap to the ``grid_s`` grid (rule 3 above) so base
        and coalesced drivers apply each fault at the same virtual time.
        """
        if duration_s <= 0:
            raise SimulationError(f"schedule needs positive duration: {duration_s}")
        if servers < 1 or racks < 1 or grid_s <= 0:
            raise SimulationError("schedule needs servers >= 1, racks >= 1, grid > 0")
        rng = DeterministicRNG(seed)
        events: List[FaultEvent] = []

        def snap(t: float) -> float:
            return max(grid_s, round(t / grid_s) * grid_s)

        def arrivals(name: str, per_day: float) -> List[float]:
            if per_day <= 0:
                return []
            stream = rng.stream(f"arrivals-{name}")
            rate = per_day / 86400.0
            out, t = [], stream.expovariate(rate)
            while t < duration_s:
                out.append(snap(t))
                t += stream.expovariate(rate)
            return out

        rapl_kinds = (
            FaultKind.RAPL_STUCK,
            FaultKind.RAPL_DROP,
            FaultKind.RAPL_GARBAGE,
            FaultKind.RAPL_WRAP,
        )
        detail = rng.stream("detail")
        for t in arrivals("rapl", rapl_per_day):
            kind = detail.choice(rapl_kinds)
            duration = 0.0
            if kind in WINDOWED_KINDS:
                duration = snap(detail.uniform(5.0, 120.0))
            events.append(
                FaultEvent(
                    at=t,
                    kind=kind,
                    duration_s=duration,
                    server=detail.randrange(servers),
                )
            )
        for t in arrivals("eio", eio_per_day):
            events.append(
                FaultEvent(
                    at=t,
                    kind=FaultKind.PSEUDO_EIO,
                    duration_s=snap(detail.uniform(5.0, 60.0)),
                    server=detail.randrange(servers),
                    path_glob=detail.choice(tuple(eio_paths)),
                )
            )
        for t in arrivals("crash", crashes_per_week / 7.0):
            events.append(
                FaultEvent(
                    at=t,
                    kind=FaultKind.MACHINE_CRASH,
                    duration_s=snap(detail.uniform(120.0, 900.0)),
                    server=detail.randrange(servers),
                )
            )
        for t in arrivals("oom", oom_per_day):
            events.append(
                FaultEvent(
                    at=t, kind=FaultKind.OOM_KILL, server=detail.randrange(servers)
                )
            )
        for t in arrivals("jitter", jitter_per_day):
            events.append(
                FaultEvent(
                    at=t,
                    kind=FaultKind.CLOCK_JITTER,
                    duration_s=snap(detail.uniform(300.0, 1800.0)),
                    magnitude=detail.uniform(0.05, 0.3),
                )
            )
        for t in arrivals("breaker", breaker_trips_per_week / 7.0):
            events.append(
                FaultEvent(
                    at=t,
                    kind=FaultKind.BREAKER_TRIP,
                    duration_s=snap(detail.uniform(300.0, 1200.0)),
                    server=detail.randrange(racks),
                )
            )
        return cls(events, seed=seed)

    @classmethod
    def standard(
        cls, seed: int, duration_s: float, servers: int = 1, racks: int = 1
    ) -> "FaultSchedule":
        """The standard chaos-harness schedule: every family at default rates."""
        return cls.generate(
            seed,
            duration_s,
            servers=servers,
            racks=racks,
            breaker_trips_per_week=2.0,
        )

    def partition(
        self,
        shard_hosts: Sequence[Sequence[int]],
        shard_racks: Sequence[Sequence[int]],
        total_servers: int,
        total_racks: int,
    ) -> Tuple[List["FaultSchedule"], "FaultSchedule"]:
        """Split the schedule for rack-sharded parallel execution.

        Host-scoped events (RAPL, EIO, crash, OOM) go to the shard owning
        ``event.server % total_servers``; breaker trips go to the shard
        owning ``event.server % total_racks``; clock-jitter events go to
        the returned *driver* schedule (jitter displaces recorded trace
        timestamps, which only the driver writes). Shard events have
        ``server`` remapped to the shard-local index so a shard-local
        :class:`FaultInjector` applies them to the right target; per-event
        randomness stays keyed on the *global* index (see
        :class:`FaultInjector`), so partitioning never changes a draw.

        Returns ``(per-shard schedules, driver schedule)``; every schedule
        keeps this schedule's seed.
        """
        host_owner: Dict[int, Tuple[int, int]] = {}
        for shard, hosts in enumerate(shard_hosts):
            for local, host in enumerate(hosts):
                host_owner[host] = (shard, local)
        rack_owner: Dict[int, Tuple[int, int]] = {}
        for shard, racks in enumerate(shard_racks):
            for local, rack in enumerate(racks):
                rack_owner[rack] = (shard, local)
        if len(host_owner) != total_servers or len(rack_owner) != total_racks:
            raise SimulationError("shard host/rack groups must cover the fleet")

        shard_events: List[List[FaultEvent]] = [[] for _ in shard_hosts]
        driver_events: List[FaultEvent] = []
        for event in self.events:
            if event.kind is FaultKind.CLOCK_JITTER:
                driver_events.append(event)
                continue
            if event.kind is FaultKind.BREAKER_TRIP:
                shard, local = rack_owner[event.server % total_racks]
            else:
                shard, local = host_owner[event.server % total_servers]
            shard_events[shard].append(dataclass_replace(event, server=local))
        return (
            [FaultSchedule(events, seed=self.seed) for events in shard_events],
            FaultSchedule(driver_events, seed=self.seed),
        )


# ----------------------------------------------------------------------
# per-kernel sensor/read fault state


class KernelFaultState:
    """The currently active sensor/read faults of one kernel.

    Installed as ``kernel.faults`` by the injector and consulted from the
    RAPL read seam (:meth:`repro.kernel.kernel.Kernel.read_energy_uj`) and
    the pseudo-VFS read path. Holding the state on the kernel keeps the
    fault visible to *every* reader of that host — attacker monitors,
    defense harnesses, detection walkers — exactly like a real flaky MSR.
    """

    def __init__(self, rng: DeterministicRNG, stats: Optional[FaultStats] = None):
        self._rng = rng
        self.stats = stats or FaultStats()
        self.drop_until = -math.inf
        self.stuck_until = -math.inf
        self.garbage_until = -math.inf
        self.wrap_pending = False
        self._stuck_values: Dict[str, int] = {}
        self._eio: List[Tuple[str, float]] = []

    # -- installation (called by the injector) --------------------------

    def fault_rapl(self, kind: FaultKind, until: float) -> None:
        """Open one RAPL fault window (or arm a one-shot wrap)."""
        if kind is FaultKind.RAPL_DROP:
            self.drop_until = max(self.drop_until, until)
        elif kind is FaultKind.RAPL_STUCK:
            self.stuck_until = max(self.stuck_until, until)
            self._stuck_values.clear()
        elif kind is FaultKind.RAPL_GARBAGE:
            self.garbage_until = max(self.garbage_until, until)
        elif kind is FaultKind.RAPL_WRAP:
            self.wrap_pending = True
        else:  # pragma: no cover - guarded by the injector
            raise SimulationError(f"not a RAPL fault kind: {kind}")

    def add_eio(self, glob: str, until: float) -> None:
        """Make reads matching ``glob`` fail with EIO until ``until``."""
        self._eio.append((glob, until))

    # -- read-path consultation -----------------------------------------

    def check_pseudo_read(self, now: float, path: str) -> None:
        """Raise :class:`TransientReadError` when ``path`` is faulted now."""
        if not self._eio:
            return
        live = [(g, u) for g, u in self._eio if u > now + _EPS]
        self._eio = live
        for glob, _ in live:
            if fnmatch.fnmatchcase(path, glob):
                self.stats.count("reads-failed:pseudo-eio")
                raise TransientReadError(path)

    def filter_energy_uj(self, now: float, domain, value: int) -> int:
        """Apply active RAPL faults to one ``energy_uj`` reading.

        Precedence when windows overlap: drop > garbage > stuck > wrap.
        """
        if now < self.drop_until:
            self.stats.count("reads-failed:rapl-drop")
            raise TransientReadError(
                f"/sys/class/powercap/{domain.sysfs_name}/energy_uj"
            )
        if now < self.garbage_until:
            self.stats.count("reads-corrupted:rapl-garbage")
            return self._rng.stream("garbage").randrange(domain.max_energy_range_uj)
        if now < self.stuck_until:
            self.stats.count("reads-corrupted:rapl-stuck")
            return self._stuck_values.setdefault(domain.sysfs_name, value)
        if self.wrap_pending:
            self.wrap_pending = False
            self.stats.count("reads-corrupted:rapl-wrap")
            half = domain.max_energy_range_uj // 2
            return (value + half) % domain.max_energy_range_uj
        return value

    def next_change(self, now: float) -> float:
        """The nearest future time an active fault window closes (inf if none)."""
        candidates = [self.drop_until, self.stuck_until, self.garbage_until]
        candidates.extend(until for _, until in self._eio)
        future = [t for t in candidates if t > now + _EPS]
        return min(future) if future else math.inf


# ----------------------------------------------------------------------
# clock jitter


class JitterModel:
    """Replayable clock-jitter state (recorded-timestamp wobble).

    Factored out of :class:`FaultInjector` so the rack-sharded parallel
    driver can replay exactly the serial injector's jitter draws: jitter
    displaces *recorded* trace timestamps, which only the trace-owning
    driver writes, so in parallel mode the driver keeps the jitter events
    while host/rack events ship to shard workers. Draws come from the
    ``sample-jitter`` stream of the rng handed in — give two models rngs
    with equal seeds and identical per-sample call sequences and they
    produce identical timestamps.
    """

    def __init__(self, rng: DeterministicRNG, stats: FaultStats):
        self._rng = rng
        self.stats = stats
        self.until = -math.inf
        self.magnitude = 0.0

    def arm(self, event: FaultEvent) -> None:
        """Open (or extend) a jitter window from one CLOCK_JITTER event."""
        self.until = max(self.until, event.until)
        self.magnitude = event.magnitude or 0.1

    def active(self, now: float) -> bool:
        """Whether a jitter window is open."""
        return now < self.until

    def jittered_time(self, when: float, interval_s: float, floor: float) -> float:
        """The recorded timestamp for a sample nominally due at ``when``.

        Draws once per *sample* (never per tick — determinism rule 2),
        bounded to less than half the sampling interval and clamped to
        ``floor`` so trace timestamps stay nondecreasing.
        """
        if when >= self.until:
            return when
        sigma = self.magnitude * interval_s
        offset = self._rng.stream("sample-jitter").gauss(0.0, sigma)
        bound = 0.45 * interval_s
        offset = max(-bound, min(bound, offset))
        self.stats.count("samples-jittered")
        return max(floor, when + offset)


# ----------------------------------------------------------------------
# the injector


class FaultInjector:
    """Replays a :class:`FaultSchedule` against a running simulation.

    The injector is driver-agnostic: it is wired with duck-typed targets
    (kernels with a ``boot_time``/``faults`` attribute, container engines
    with a ``containers`` dict, racks with a ``breaker``) so both the
    fleet :class:`~repro.datacenter.simulation.DatacenterSimulation` and
    the single-host :class:`~repro.kernel.kernel.Machine` can drive it.
    Drivers call :meth:`advance` once per tick-planning decision and
    treat :meth:`next_barrier` as a coalescing horizon.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        rng: Optional[DeterministicRNG] = None,
        *,
        kernels: Sequence[object],
        engines: Sequence[object] = (),
        racks: Sequence[object] = (),
        kernel_labels: Optional[Sequence[int]] = None,
        rack_labels: Optional[Sequence[int]] = None,
        populations: Sequence[object] = (),
    ):
        if not kernels:
            raise SimulationError("fault injector needs at least one kernel")
        self.schedule = schedule
        self.rng = rng or DeterministicRNG(schedule.seed)
        self.kernels = list(kernels)
        self.engines = list(engines)
        self.racks = list(racks)
        #: columnar tenant populations to notify when a fault reaps a
        #: task behind their back (OOM-pruned dirty mask); duck-typed on
        #: ``note_task_killed(task)``
        self.populations = list(populations)
        #: fleet-global index of each rack (trace markers report global
        #: rack identity even from a shard holding a subset of racks)
        self.rack_labels = (
            list(rack_labels)
            if rack_labels is not None
            else list(range(len(self.racks)))
        )
        if len(self.rack_labels) != len(self.racks):
            raise SimulationError("rack_labels must match racks 1:1")
        #: optional span tracer; due events become instant markers on the
        #: ``fault`` track (drivers assign this after construction)
        self.tracer = None
        #: columnar host engine (drivers assign after construction). A
        #: host-scoped fault needs the real per-object kernel — RAPL and
        #: EIO states act on read paths, crashes freeze live state, OOM
        #: picks victims from the engine's container table — so due
        #: events materialize their target before applying.
        self.host_engine = None
        #: fleet-global index of each kernel — keys every per-kernel and
        #: per-event rng derivation, so a shard injector holding a subset
        #: of the fleet consumes exactly the draws the whole-fleet serial
        #: injector would for the same targets
        self.kernel_labels = (
            list(kernel_labels)
            if kernel_labels is not None
            else list(range(len(self.kernels)))
        )
        if len(self.kernel_labels) != len(self.kernels):
            raise SimulationError("kernel_labels must match kernels 1:1")
        self.stats = FaultStats()
        self.jitter = JitterModel(self.rng, self.stats)
        self._cursor = 0
        #: server index -> absolute restart time
        self._crashed: Dict[int, float] = {}
        #: rack index -> absolute reclose time
        self._forced_breakers: Dict[int, float] = {}
        for label, kernel in zip(self.kernel_labels, self.kernels):
            if getattr(kernel, "faults", None) is None:
                kernel.faults = KernelFaultState(
                    self.rng.fork(f"kernel-{label}"), stats=self.stats
                )

    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        # Checkpoint snapshots pickle the injector with its full replay
        # state (rng streams, schedule cursor, pending expiries, jitter
        # window) but never the tracer — it closes over a live clock and
        # is rewired by the restoring side.
        state = dict(self.__dict__)
        state["tracer"] = None
        return state

    # ------------------------------------------------------------------

    def crashed_now(self) -> frozenset:
        """Server indices currently down due to a crash fault."""
        return frozenset(self._crashed)

    def jitter_active(self, now: float) -> bool:
        """Whether a clock-jitter window is open."""
        return self.jitter.active(now)

    def jittered_time(self, when: float, interval_s: float, floor: float) -> float:
        """The recorded timestamp for a sample nominally due at ``when``.

        Delegates to the injector's :class:`JitterModel` (one draw per
        sample inside a jitter window, clamped and floored).
        """
        return self.jitter.jittered_time(when, interval_s, floor)

    # ------------------------------------------------------------------

    def advance(self, now: float) -> bool:
        """Apply every due event and expiry; True when any state changed.

        Drivers must call this once per tick-planning decision *before*
        sizing the tick, and reset their stability tracker when it
        returns True (a fault boundary invalidates phase stability).
        """
        changed = False
        tracer = self.tracer
        trace_on = tracer is not None and tracer.enabled
        for index, t in [
            (i, t) for i, t in self._crashed.items() if t <= now + _EPS
        ]:
            del self._crashed[index]
            self.kernels[index].boot_time = now  # the reboot
            self.stats.count("machine-restarts")
            if trace_on:
                tracer.instant(
                    "fault.machine-restart",
                    at=t,
                    track="fault",
                    server=self.kernel_labels[index],
                )
            changed = True
        for rack_index, t in [
            (i, t) for i, t in self._forced_breakers.items() if t <= now + _EPS
        ]:
            del self._forced_breakers[rack_index]
            breaker = self.racks[rack_index].breaker
            if breaker.tripped:
                breaker.reset()
                self.stats.count("breaker-recloses")
                if trace_on:
                    tracer.instant(
                        "fault.breaker-reclose",
                        at=t,
                        track="fault",
                        rack=self.rack_labels[rack_index],
                    )
            changed = True
        events = self.schedule.events
        while self._cursor < len(events) and events[self._cursor].at <= now + _EPS:
            self._apply(events[self._cursor], now)
            self._cursor += 1
            changed = True
        return changed

    def next_barrier(self, now: float) -> float:
        """The nearest future fault boundary (event start *or* window end)."""
        barrier = math.inf
        events = self.schedule.events
        if self._cursor < len(events):
            barrier = events[self._cursor].at
        for t in self._crashed.values():
            barrier = min(barrier, t)
        for t in self._forced_breakers.values():
            barrier = min(barrier, t)
        if now < self.jitter.until:
            barrier = min(barrier, self.jitter.until)
        for kernel in self.kernels:
            state = getattr(kernel, "faults", None)
            if state is not None:
                barrier = min(barrier, state.next_change(now))
        return max(barrier, now)

    # ------------------------------------------------------------------

    def _kernel_state(self, event: FaultEvent) -> KernelFaultState:
        kernel = self.kernels[event.server % len(self.kernels)]
        return kernel.faults

    def _apply(self, event: FaultEvent, now: float) -> None:
        self.stats.count(f"injected:{event.kind.value}")
        kind = event.kind
        if self.tracer is not None and self.tracer.enabled:
            self._mark(event)
        if self.host_engine is not None and kind in _HOST_SCOPED_KINDS:
            self.host_engine.ensure_hot_kernel(
                self.kernels[event.server % len(self.kernels)]
            )
        if kind in (
            FaultKind.RAPL_STUCK,
            FaultKind.RAPL_DROP,
            FaultKind.RAPL_GARBAGE,
            FaultKind.RAPL_WRAP,
        ):
            self._kernel_state(event).fault_rapl(kind, event.until)
        elif kind is FaultKind.PSEUDO_EIO:
            self._kernel_state(event).add_eio(event.path_glob, event.until)
        elif kind is FaultKind.MACHINE_CRASH:
            index = event.server % len(self.kernels)
            restart = max(event.until, now + _EPS)
            self._crashed[index] = max(self._crashed.get(index, -math.inf), restart)
        elif kind is FaultKind.OOM_KILL:
            self._apply_oom(event)
        elif kind is FaultKind.CLOCK_JITTER:
            self.jitter.arm(event)
        elif kind is FaultKind.BREAKER_TRIP:
            self._apply_breaker_trip(event, now)
        else:  # pragma: no cover - enum is closed
            raise SimulationError(f"unknown fault kind: {kind}")

    def _mark(self, event: FaultEvent) -> None:
        """Emit one instant marker for an injected event.

        Markers land at the event's *scheduled* time with fleet-global
        target labels, so a partitioned shard injector (local indices)
        emits exactly the marker the whole-fleet serial injector would.
        """
        attrs: Dict[str, object] = {"duration_s": event.duration_s}
        if event.kind is FaultKind.BREAKER_TRIP:
            if self.racks:
                attrs["rack"] = self.rack_labels[event.server % len(self.racks)]
        elif event.kind is not FaultKind.CLOCK_JITTER:
            attrs["server"] = self.kernel_labels[event.server % len(self.kernels)]
        if event.kind is FaultKind.CLOCK_JITTER:
            attrs["magnitude"] = event.magnitude
        self.tracer.instant(
            f"fault.{event.kind.value}", at=event.at, track="fault", **attrs
        )

    def _apply_oom(self, event: FaultEvent) -> None:
        """Kill the most recently started non-init task of one container."""
        if not self.engines:
            self.stats.count("oom-noop")
            return
        engine = self.engines[event.server % len(self.engines)]
        candidates = []
        for name in sorted(engine.containers):
            container = engine.containers[name]
            victims = [t for t in container.tasks if t is not container.init_task]
            if victims:
                candidates.append((container, victims[-1]))
        if not candidates:
            self.stats.count("oom-noop")
            return
        # keyed per event on the *global* server label (not a single
        # shared stream consumed in schedule order) so a partitioned
        # shard injector picks the victim the whole-fleet one would
        label = self.kernel_labels[event.server % len(self.kernels)]
        stream = self.rng.stream(f"oom-victim@{event.at!r}#{label}")
        container, victim = stream.choice(candidates)
        container.kill_task(victim)
        for population in self.populations:
            if population.note_task_killed(victim):
                break
        self.stats.count("oom-kills")

    def _apply_breaker_trip(self, event: FaultEvent, now: float) -> None:
        if not self.racks:
            self.stats.count("breaker-trip-noop")
            return
        rack_index = event.server % len(self.racks)
        breaker = self.racks[rack_index].breaker
        if not breaker.tripped:
            breaker.force_trip(now)
            self._forced_breakers[rack_index] = max(
                self._forced_breakers.get(rack_index, -math.inf),
                max(event.until, now + _EPS),
            )
        else:
            self.stats.count("breaker-trip-noop")
