"""UnixBench overhead evaluation (Table III).

Runs the twelve UnixBench micro-tests inside a container twice — on the
unmodified kernel and with the power-based namespace's perf accounting
enabled — at 1 and 8 parallel copies, and reports per-test overhead.

The overheads *emerge* from the scheduler's cost model rather than being
scripted: pipe-based context switching loses time to perf-counter toggles
only when its switches leave the monitored cgroup (one copy → the
switch partner is the idle context → every switch toggles; eight copies →
same-cgroup peers absorb the switches), spawn-heavy tests pay the
perf-event wiring cost per process created, and cache-miss-heavy file
copies pay the per-event bookkeeping tax that grows with total monitored
event rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.defense.collection import ContainerPerfCollector
from repro.errors import DefenseError
from repro.kernel.kernel import Machine
from repro.runtime.benchmarks import UNIXBENCH_TESTS, UnixBenchTest
from repro.runtime.engine import ContainerEngine


@dataclass(frozen=True)
class UnixBenchRun:
    """One test's scores with and without the power namespace."""

    test: str
    copies: int
    original_score: float
    modified_score: float

    @property
    def overhead_fraction(self) -> float:
        """(original − modified)/original; negative = modified faster."""
        if self.original_score <= 0:
            raise DefenseError(f"non-positive original score: {self}")
        return (self.original_score - self.modified_score) / self.original_score

    @property
    def overhead_percent(self) -> float:
        """Overhead as Table III prints it."""
        return self.overhead_fraction * 100.0


class UnixBenchRunner:
    """Drives the UnixBench suite against the simulated kernel."""

    def __init__(self, seed: int = 0, run_seconds: float = 30.0):
        self.seed = seed
        self.run_seconds = run_seconds

    # ------------------------------------------------------------------

    def _score_once(
        self, test: UnixBenchTest, copies: int, monitored: bool
    ) -> float:
        """ops/sec for one configuration on a fresh machine."""
        machine = Machine(seed=self.seed, spawn_daemons=False)
        kernel = machine.kernel
        engine = ContainerEngine(kernel)
        container = engine.create(name="ub")
        if monitored:
            collector = ContainerPerfCollector(kernel)
            collector.attach(container.cgroup_set["perf_event"])

        tasks = []
        for copy in range(copies):
            # pipe-style tests run two communicating processes per copy
            nprocs = 2 if test.switches_per_op > 0 else 1
            for proc in range(nprocs):
                tasks.append(
                    container.exec(
                        f"{test.name[:12]}-{copy}-{proc}",
                        workload=test.workload(duration=self.run_seconds),
                    )
                )
        machine.run(self.run_seconds, dt=0.5)

        useful_cpu_seconds = sum(t.workload.total.work_units for t in tasks)
        ops = useful_cpu_seconds * test.base_ops_per_cpu_sec
        # spawn-heavy tests pay the perf-event wiring cost per op when
        # monitored: each op forks a process that must be attached to the
        # cgroup's events before it runs
        if test.spawns_per_op > 0:
            spawn_extra_s = (
                kernel.perf.tuning.spawn_ns / 1e9 if monitored else 0.0
            )
            per_op_s = 1.0 / test.base_ops_per_cpu_sec + (
                test.spawns_per_op * spawn_extra_s
            )
            ops = useful_cpu_seconds / per_op_s
        return ops / self.run_seconds

    def run_test(self, test: UnixBenchTest, copies: int) -> UnixBenchRun:
        """Score one test original-vs-modified."""
        if copies < 1:
            raise DefenseError(f"copies must be >= 1: {copies}")
        original = self._score_once(test, copies, monitored=False)
        modified = self._score_once(test, copies, monitored=True)
        return UnixBenchRun(
            test=test.name,
            copies=copies,
            original_score=original,
            modified_score=modified,
        )

    def run_suite(
        self, copies_list: Tuple[int, ...] = (1, 8)
    ) -> Dict[int, List[UnixBenchRun]]:
        """The full Table III: every test at every copy count."""
        results: Dict[int, List[UnixBenchRun]] = {}
        for copies in copies_list:
            results[copies] = [
                self.run_test(test, copies) for test in UNIXBENCH_TESTS
            ]
        return results

    @staticmethod
    def index_score(runs: List[UnixBenchRun]) -> Tuple[float, float]:
        """Geometric-mean system index (original, modified), UnixBench-style."""
        if not runs:
            raise DefenseError("no runs to index")
        log_orig = 0.0
        log_mod = 0.0
        for run in runs:
            import math

            log_orig += math.log(max(run.original_score, 1e-9))
            log_mod += math.log(max(run.modified_score, 1e-9))
        import math

        n = len(runs)
        return math.exp(log_orig / n), math.exp(log_mod / n)


def format_table3(results: Dict[int, List[UnixBenchRun]]) -> str:
    """Render the suite results as the paper's Table III."""
    copies_list = sorted(results)
    header = f"{'Benchmarks':<42}" + "".join(
        f"{'orig':>12}{'mod':>12}{'ovh%':>8}" for _ in copies_list
    )
    title = f"{'':<42}" + "".join(
        f"{str(c) + ' copy(ies)':>32}" for c in copies_list
    )
    lines = [title, header, "-" * len(header)]
    by_test: Dict[str, Dict[int, UnixBenchRun]] = {}
    for copies, runs in results.items():
        for run in runs:
            by_test.setdefault(run.test, {})[copies] = run
    for test_name, per_copies in by_test.items():
        row = f"{test_name:<42}"
        for copies in copies_list:
            run = per_copies[copies]
            row += (
                f"{run.original_score:>12.1f}{run.modified_score:>12.1f}"
                f"{run.overhead_percent:>8.2f}"
            )
        lines.append(row)
    runner = UnixBenchRunner()
    row = f"{'System Benchmarks Index Score':<42}"
    for copies in copies_list:
        orig, mod = runner.index_score(results[copies])
        overhead = (orig - mod) / orig * 100.0
        row += f"{orig:>12.1f}{mod:>12.1f}{overhead:>8.2f}"
    lines.append(row)
    return "\n".join(lines)
