"""The two-stage defense (Section V).

Stage 1 — :mod:`repro.defense.masking`: generate masking policies from
cross-validation reports and verify they close the discovered channels
(the quick fix: AppArmor-style denies, no kernel change).

Stage 2 — the power-based namespace, the paper's kernel modification:

- :mod:`repro.defense.collection` — per-container performance data
  collection over perf_event cgroups (Section V-B-1).
- :mod:`repro.defense.modeling` — the Formula 2 power model and its
  regression training harness (Figures 6/7).
- :mod:`repro.defense.calibration` — Formula 3's on-the-fly calibration.
- :mod:`repro.defense.powerns` — the namespace driver that installs the
  modified RAPL read path and serves per-container energy.
- :mod:`repro.defense.unixbench` — the Table III overhead harness.
"""

from repro.defense.billing import PowerBiller, PowerThrottler
from repro.defense.calibration import CalibratedAttribution, RawAttribution
from repro.defense.collection import ContainerPerfCollector
from repro.defense.kernel_patches import apply_all_patches, apply_patch
from repro.defense.masking import generate_masking_policy, verify_masking
from repro.defense.modeling import PowerModeler, TrainedPowerModel, TrainingHarness
from repro.defense.powerns import PowerNamespaceDriver
from repro.defense.unixbench import UnixBenchRun, UnixBenchRunner

__all__ = [
    "CalibratedAttribution",
    "PowerBiller",
    "PowerThrottler",
    "apply_all_patches",
    "apply_patch",
    "ContainerPerfCollector",
    "PowerModeler",
    "PowerNamespaceDriver",
    "RawAttribution",
    "TrainedPowerModel",
    "TrainingHarness",
    "UnixBenchRun",
    "UnixBenchRunner",
    "generate_masking_policy",
    "verify_masking",
]
