"""Power-based billing and throttling on top of the power namespace.

The paper's Section V-B motivates the namespace with two operator-side
applications beyond closing the leak: "we can dynamically throttle the
computing power (or increase the usage fee) of containers that exceed
their predefined power thresholds. It is possible for container cloud
administrators to design a finer-grained billing model based on this
power-based namespace." Both are implemented here, driven exclusively by
the namespace's per-container virtual counters — the same data a tenant
sees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.defense.powerns import PowerNamespaceDriver
from repro.errors import DefenseError
from repro.kernel.cgroups import CpuQuotaState
from repro.kernel.rapl import unwrap_delta
from repro.runtime.container import Container

ENERGY_PATH = "/sys/class/powercap/intel-rapl:0/energy_uj"


@dataclass
class PowerBill:
    """One container's power-metered bill."""

    container: str
    joules: float
    rate_per_kwh: float

    @property
    def kwh(self) -> float:
        return self.joules / 3.6e6

    @property
    def dollars(self) -> float:
        return self.kwh * self.rate_per_kwh


class PowerBiller:
    """Energy-metered billing from per-container namespace counters.

    Like any real RAPL consumer, the biller must observe the counter more
    often than it wraps (``max_energy_range_uj`` ≈ 262 kJ — about 45
    minutes at 100 W): :meth:`poll` each metered container at that cadence
    (or simply call :meth:`bill`, which polls). A missed wrap
    under-charges, exactly as it would on hardware.
    """

    def __init__(self, driver: PowerNamespaceDriver, rate_per_kwh: float = 0.24):
        if rate_per_kwh <= 0:
            raise DefenseError(f"rate must be positive: {rate_per_kwh}")
        self.driver = driver
        self.rate_per_kwh = rate_per_kwh
        self._marks: Dict[str, int] = {}
        self._accumulated_j: Dict[str, float] = {}

    def _read_uj(self, container: Container) -> int:
        return int(container.read(ENERGY_PATH))

    def start_metering(self, container: Container) -> None:
        """Open a billing period for a container."""
        if container.name in self._marks:
            raise DefenseError(f"already metering: {container.name}")
        self._marks[container.name] = self._read_uj(container)
        self._accumulated_j[container.name] = 0.0

    def poll(self, container: Container) -> None:
        """Fold the counter delta since the last poll into the meter."""
        mark = self._marks.get(container.name)
        if mark is None:
            raise DefenseError(f"not metering: {container.name}")
        current = self._read_uj(container)
        self._accumulated_j[container.name] += unwrap_delta(current, mark) / 1e6
        self._marks[container.name] = current

    def bill(self, container: Container) -> PowerBill:
        """The bill since metering started (meter keeps running)."""
        self.poll(container)
        return PowerBill(
            container=container.name,
            joules=self._accumulated_j[container.name],
            rate_per_kwh=self.rate_per_kwh,
        )


@dataclass
class ThrottleDecision:
    """One evaluation of a container against its power cap."""

    container: str
    watts: float
    limit_watts: float
    quota_cores: Optional[float]

    @property
    def throttled(self) -> bool:
        return self.quota_cores is not None


class PowerThrottler:
    """Feedback throttling of containers that exceed a power cap.

    Each :meth:`evaluate` call measures every capped container's power
    over the elapsed window through its namespace counter and adjusts the
    container's cpu-cgroup quota: multiplicative backoff above the cap,
    gradual release below it — the "power-based feedback loop" the paper
    describes at the host level.
    """

    BACKOFF = 0.75
    RELEASE = 1.15

    def __init__(self, driver: PowerNamespaceDriver):
        self.driver = driver
        self._limits: Dict[str, float] = {}
        self._containers: Dict[str, Container] = {}
        self._marks: Dict[str, tuple] = {}

    def cap(self, container: Container, limit_watts: float) -> None:
        """Register a power cap for one container."""
        if limit_watts <= 0:
            raise DefenseError(f"power cap must be positive: {limit_watts}")
        self._limits[container.name] = limit_watts
        self._containers[container.name] = container
        self._marks[container.name] = (
            int(container.read(ENERGY_PATH)),
            self.driver.kernel.clock.now,
        )

    def uncap(self, container: Container) -> None:
        """Remove the cap and any active throttle."""
        if container.name not in self._limits:
            raise DefenseError(f"no cap registered: {container.name}")
        del self._limits[container.name]
        del self._marks[container.name]
        del self._containers[container.name]
        self._quota_state(container).set_quota(None)

    @staticmethod
    def _quota_state(container: Container) -> CpuQuotaState:
        state = container.cgroup_set["cpu"].state
        assert isinstance(state, CpuQuotaState)
        return state

    def evaluate(self) -> List[ThrottleDecision]:
        """Measure every capped container and adjust its quota."""
        decisions = []
        now = self.driver.kernel.clock.now
        ncores = self.driver.kernel.config.total_cores
        for name, limit in self._limits.items():
            container = self._containers[name]
            mark_uj, mark_t = self._marks[name]
            dt = now - mark_t
            if dt <= 0:
                continue
            current_uj = int(container.read(ENERGY_PATH))
            watts = unwrap_delta(current_uj, mark_uj) / 1e6 / dt
            self._marks[name] = (current_uj, now)

            state = self._quota_state(container)
            quota = state.quota_cores
            if watts > limit:
                base = quota if quota is not None else float(ncores)
                state.set_quota(max(0.1, base * self.BACKOFF))
            elif quota is not None and watts < limit * 0.7:
                released = quota * self.RELEASE
                state.set_quota(None if released >= ncores else released)
            decisions.append(
                ThrottleDecision(
                    container=name,
                    watts=watts,
                    limit_watts=limit,
                    quota_cores=state.quota_cores,
                )
            )
        return decisions
