"""Power modelling (Section V-B-2): Formula 2 and its training harness.

The model attributes *active* energy from perf counters:

    M_core = F(CM/C, BM/C) · I + α        (paper form)
    M_dram = β · CM + γ
    M_package = M_core + M_dram + λ

F is a polynomial in the two miss rates fitted by least squares over
windows of the modelling benchmarks (idle loop, prime, libquantum, stress
variants — Figures 6/7). A "full" form regressing on (C, CM, BM) directly
is also provided for the ablation on model terms: the paper form carries
structural error (it folds cycle-proportional energy into the
per-instruction slope), which is precisely what makes the Formula 3
calibration step earn its keep.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional

from repro.analysis.regression import LinearModel, fit_linear, polynomial_features
from repro.defense.collection import ContainerPerfCollector, PerfWindow
from repro.errors import DefenseError, ReproError
from repro.kernel.kernel import Machine
from repro.kernel.rapl import unwrap_delta
from repro.runtime.benchmarks import MODELING_BENCHMARKS, BenchmarkProfile


@dataclass(frozen=True)
class WindowSample:
    """One training window: counters + measured energy."""

    benchmark: str
    duration_s: float
    window: PerfWindow
    e_core_active_j: float
    e_dram_active_j: float
    e_package_total_j: float


@dataclass
class TrainedPowerModel:
    """The fitted Formula 2 model plus the idle baseline."""

    form: str
    core_model: LinearModel
    dram_model: LinearModel
    lambda_watts: float
    idle_core_watts: float
    idle_dram_watts: float
    degree: int = 2

    def _core_features(self, window: PerfWindow) -> List[float]:
        if self.form == "paper":
            poly = polynomial_features(
                window.cache_miss_rate, window.branch_miss_rate, self.degree
            )
            return [f * window.instructions for f in poly]
        if self.form == "full":
            return [
                float(window.cycles),
                float(window.cache_misses),
                float(window.branch_misses),
            ]
        raise DefenseError(f"unknown model form: {self.form}")

    def core_active_j(self, window: PerfWindow) -> float:
        """M_core: modelled active core energy for one window."""
        return max(0.0, self.core_model.predict(self._core_features(window)))

    def dram_active_j(self, window: PerfWindow) -> float:
        """M_dram: modelled active DRAM energy for one window."""
        return max(0.0, self.dram_model.predict([float(window.cache_misses)]))

    def active_j(self, window: PerfWindow) -> float:
        """Modelled active core+DRAM energy for one window."""
        return self.core_active_j(window) + self.dram_active_j(window)

    def host_package_j(self, window: PerfWindow, dt: float) -> float:
        """M_package for the whole host over a dt-second window."""
        return (
            self.active_j(window)
            + (self.idle_core_watts + self.idle_dram_watts + self.lambda_watts) * dt
        )


class TrainingHarness:
    """Runs the modelling benchmarks and records (counters, energy) windows.

    Everything is measured the way a real defender would: host-wide perf
    counters and the RAPL sysfs counters, never the simulator's hidden
    power parameters.
    """

    def __init__(
        self,
        seed: int = 0,
        window_s: float = 5.0,
        windows_per_benchmark: int = 24,
        machine: Optional[Machine] = None,
        sensor_retries: int = 6,
        max_plausible_watts: float = 2000.0,
        tracer=None,
    ):
        self.window_s = window_s
        self.windows_per_benchmark = windows_per_benchmark
        self.machine = machine or Machine(seed=seed)
        #: optional :class:`repro.obs.SpanTracer`; when enabled the harness
        #: records defense.idle / defense.benchmark spans on the "defense"
        #: track using this machine's virtual clock for sim-time
        self.tracer = tracer
        #: retries per RAPL read before giving up (each waits out virtual
        #: time, doubling, so a transient drop window usually clears)
        self.sensor_retries = sensor_retries
        #: package-power ceiling above which a window is garbage, not data
        self.max_plausible_watts = max_plausible_watts
        #: training windows discarded because a counter read was implausible
        self.degraded_windows = 0
        kernel = self.machine.kernel
        if not kernel.rapl.present:
            raise DefenseError("training needs RAPL hardware")
        self.collector = ContainerPerfCollector(kernel)
        self.samples: List[WindowSample] = []
        self.samples_by_benchmark: Dict[str, List[WindowSample]] = {}
        self.idle_core_watts = 0.0
        self.idle_dram_watts = 0.0
        self._measure_idle()

    # ------------------------------------------------------------------

    def _trace(self):
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            return tracer
        return None

    def _read_domain_uj(self, domain) -> int:
        """One driver-path RAPL read, waiting out transient faults.

        Reads go through :meth:`Kernel.read_energy_uj` — the same seam a
        fault injector corrupts — and retry with doubling virtual-time
        waits; a fault window that outlives every retry is a
        :class:`DefenseError` (training cannot proceed blind).
        """
        kernel = self.machine.kernel
        wait_s = 1.0
        for attempt in range(self.sensor_retries + 1):
            try:
                return kernel.read_energy_uj(domain)
            except ReproError:
                if attempt == self.sensor_retries:
                    break
                self.machine.run(wait_s, dt=1.0)
                wait_s *= 2.0
        raise DefenseError(
            f"RAPL domain {domain.sysfs_name} unreadable after "
            f"{self.sensor_retries} retries"
        )

    def _rapl_marks(self):
        pkg = self.machine.kernel.rapl.package(0)
        return tuple(
            self._read_domain_uj(d) for d in (pkg.core, pkg.dram, pkg.package)
        )

    def _rapl_deltas_j(self, marks) -> tuple:
        now = self._rapl_marks()
        return tuple(
            unwrap_delta(b, a) / 1e6 for a, b in zip(marks, now)
        )

    def _plausible(self, pkg_j: float, seconds: float) -> bool:
        watts = pkg_j / seconds
        return 0.0 < watts <= self.max_plausible_watts

    def _measure_idle(self, seconds: float = 30.0, attempts: int = 3) -> None:
        tracer = self._trace()
        if tracer is not None:
            i_t0, i_w0 = self.machine.clock.now, perf_counter()
        for _ in range(attempts):
            marks = self._rapl_marks()
            self.machine.run(seconds, dt=1.0)
            core_j, dram_j, pkg_j = self._rapl_deltas_j(marks)
            if self._plausible(pkg_j, seconds):
                break
            # a stuck/garbage counter poisoned the baseline: measure again
            self.degraded_windows += 1
        else:
            raise DefenseError(
                f"no plausible idle baseline in {attempts} attempts"
            )
        self.idle_core_watts = core_j / seconds
        self.idle_dram_watts = dram_j / seconds
        self.collector.collect_host()  # reset the host perf mark
        if tracer is not None:
            tracer.add_span(
                "defense.idle",
                i_t0,
                self.machine.clock.now,
                perf_counter() - i_w0,
                track="defense",
                idle_watts=self.idle_core_watts + self.idle_dram_watts,
            )

    def run_benchmark(self, profile: BenchmarkProfile, cores: int = 4) -> List[WindowSample]:
        """Run one benchmark and collect its training windows."""
        tracer = self._trace()
        if tracer is not None:
            b_t0, b_w0 = self.machine.clock.now, perf_counter()
        kernel = self.machine.kernel
        tasks = [
            kernel.spawn(f"{profile.name}-{i}", workload=profile.workload())
            for i in range(cores)
        ]
        # warm-up window, discarded
        self.machine.run(self.window_s, dt=1.0)
        self.collector.collect_host()
        marks = self._rapl_marks()

        collected: List[WindowSample] = []
        for _ in range(self.windows_per_benchmark):
            self.machine.run(self.window_s, dt=1.0)
            window = self.collector.collect_host()
            core_j, dram_j, pkg_j = self._rapl_deltas_j(marks)
            marks = self._rapl_marks()
            if not self._plausible(pkg_j, self.window_s):
                # corrupted counter (stuck/garbage/spurious wrap): the
                # window would poison the fit — drop it, keep training
                self.degraded_windows += 1
                continue
            collected.append(
                WindowSample(
                    benchmark=profile.name,
                    duration_s=self.window_s,
                    window=window,
                    e_core_active_j=max(
                        0.0, core_j - self.idle_core_watts * self.window_s
                    ),
                    e_dram_active_j=max(
                        0.0, dram_j - self.idle_dram_watts * self.window_s
                    ),
                    e_package_total_j=pkg_j,
                )
            )
        for task in tasks:
            kernel.kill(task)
        self.machine.run(2.0, dt=1.0)  # drain
        self.collector.collect_host()
        self.samples.extend(collected)
        self.samples_by_benchmark.setdefault(profile.name, []).extend(collected)
        if tracer is not None:
            tracer.add_span(
                "defense.benchmark",
                b_t0,
                self.machine.clock.now,
                perf_counter() - b_w0,
                track="defense",
                benchmark=profile.name,
                cores=cores,
                windows=len(collected),
            )
        return collected

    def run_all(
        self,
        benchmarks: Optional[Dict[str, BenchmarkProfile]] = None,
        core_counts: tuple = (1, 2, 4),
    ) -> None:
        """Run the full modelling set (Figures 6/7's workloads).

        Each benchmark runs at several degrees of parallelism so the
        instruction counts per window span a wide range — that spread is
        what makes the per-benchmark energy-vs-instructions lines of
        Figure 6 (and the regression behind Formula 2) well-conditioned.
        """
        for profile in (benchmarks or MODELING_BENCHMARKS).values():
            for cores in core_counts:
                self.run_benchmark(profile, cores=cores)


class PowerModeler:
    """Fits :class:`TrainedPowerModel` from harness samples."""

    def __init__(self, form: str = "paper", degree: int = 2):
        if form not in ("paper", "full"):
            raise DefenseError(f"unknown model form: {form}")
        self.form = form
        self.degree = degree

    def fit(self, harness: TrainingHarness) -> TrainedPowerModel:
        """Least-squares fit of Formula 2 over the harness samples."""
        samples = harness.samples
        if len(samples) < 8:
            raise DefenseError(f"too few training windows: {len(samples)}")

        if self.form == "paper":
            core_features = [
                [
                    f * s.window.instructions
                    for f in polynomial_features(
                        s.window.cache_miss_rate,
                        s.window.branch_miss_rate,
                        self.degree,
                    )
                ]
                for s in samples
            ]
        else:
            core_features = [
                [
                    float(s.window.cycles),
                    float(s.window.cache_misses),
                    float(s.window.branch_misses),
                ]
                for s in samples
            ]
        core_model = fit_linear(core_features, [s.e_core_active_j for s in samples])

        dram_model = fit_linear(
            [[float(s.window.cache_misses)] for s in samples],
            [s.e_dram_active_j for s in samples],
        )

        # λ: package power not explained by core + DRAM + their idle floors
        residuals = [
            (
                s.e_package_total_j
                - (s.e_core_active_j + harness.idle_core_watts * s.duration_s)
                - (s.e_dram_active_j + harness.idle_dram_watts * s.duration_s)
            )
            / s.duration_s
            for s in samples
        ]
        lambda_watts = max(0.0, sum(residuals) / len(residuals))

        return TrainedPowerModel(
            form=self.form,
            core_model=core_model,
            dram_model=dram_model,
            lambda_watts=lambda_watts,
            idle_core_watts=harness.idle_core_watts,
            idle_dram_watts=harness.idle_dram_watts,
            degree=self.degree,
        )
