"""Stage-2 kernel patches: fix the missing namespace context checks.

Where the power-based namespace virtualizes a *new* resource, these
patches fix *existing* namespaces' blind spots (Section V-A's second
stage): the implantation channels (timer_list, locks, sched_debug — the
CVE-2017-5967 class) and the Case Study I ``net_prio.ifpriomap`` handler.

Applying a patch swaps the pseudo-file's handler for the namespace-aware
version on a live VFS, the moral equivalent of booting the patched
kernel. The detection and co-residence tooling can then be re-run to
verify the channels are closed — without any masking policy.
"""

from __future__ import annotations

from typing import List

from repro.errors import DefenseError
from repro.procfs.render.patched import (
    render_locks_patched,
    render_sched_debug_patched,
    render_timer_list_patched,
)
from repro.procfs.render.sys_cgroup import render_ifpriomap_fixed
from repro.procfs.vfs import PseudoVFS

#: path -> (patched renderer, CVE/case-study note)
PATCHES = {
    "/proc/timer_list": (
        render_timer_list_patched,
        "CVE-2017-5967: hide foreign-namespace timers",
    ),
    "/proc/locks": (
        render_locks_patched,
        "lock table filtered by PID-namespace visibility",
    ),
    "/proc/sched_debug": (
        render_sched_debug_patched,
        "runqueue dump restricted to the reader's PID namespace",
    ),
    "/sys/fs/cgroup/net_prio/net_prio.ifpriomap": (
        render_ifpriomap_fixed,
        "Case Study I: iterate the reader's NET namespace, not init_net",
    ),
}


def apply_patch(vfs: PseudoVFS, path: str) -> str:
    """Apply one patch to a live VFS; returns the patch note."""
    patch = PATCHES.get(path)
    if patch is None:
        raise DefenseError(f"no namespace patch available for {path}")
    renderer, note = patch
    node = vfs.lookup(path)
    node.render = renderer
    node.namespaced = True
    return note


def apply_all_patches(vfs: PseudoVFS) -> List[str]:
    """Apply every available patch; returns the applied paths."""
    applied = []
    for path in PATCHES:
        if vfs.exists(path):
            apply_patch(vfs, path)
            applied.append(path)
    return applied
