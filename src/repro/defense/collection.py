"""Per-container performance data collection (Section V-B-1).

The driver creates perf events for each container's perf_event cgroup —
owned by ``TASK_TOMBSTONE`` so the accounting outlives any tenant process —
and exposes *windowed deltas*: each call returns the counters accumulated
since the previous call, which is exactly what the modelling stage needs
to turn counters into energy-per-window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import DefenseError
from repro.kernel.cgroups import Cgroup, PerfCounters
from repro.kernel.kernel import Kernel
from repro.kernel.perf import TASK_TOMBSTONE


@dataclass(frozen=True)
class PerfWindow:
    """Counters accumulated over one collection window."""

    cycles: int
    instructions: int
    cache_misses: int
    branch_misses: int

    @property
    def cache_miss_rate(self) -> float:
        """CM/C — the first argument of Formula 2's F."""
        return self.cache_misses / self.cycles if self.cycles else 0.0

    @property
    def branch_miss_rate(self) -> float:
        """BM/C — the second argument of Formula 2's F."""
        return self.branch_misses / self.cycles if self.cycles else 0.0


def _window(delta: PerfCounters) -> PerfWindow:
    return PerfWindow(
        cycles=delta.cycles,
        instructions=delta.instructions,
        cache_misses=delta.cache_misses,
        branch_misses=delta.branch_misses,
    )


class ContainerPerfCollector:
    """Windowed perf-counter collection, per container and host-wide."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self._container_marks: Dict[Cgroup, PerfCounters] = {}
        self._host_mark: PerfCounters = kernel.perf.host_counters.snapshot()

    def attach(self, perf_cgroup: Cgroup) -> None:
        """Start accounting for one container's perf_event cgroup."""
        if perf_cgroup in self._container_marks:
            raise DefenseError(f"collector already attached: {perf_cgroup}")
        self.kernel.perf.enable(perf_cgroup, owner=TASK_TOMBSTONE)
        state = perf_cgroup.state
        self._container_marks[perf_cgroup] = state.counters.snapshot()

    def detach(self, perf_cgroup: Cgroup) -> None:
        """Stop accounting (container removed)."""
        if perf_cgroup not in self._container_marks:
            raise DefenseError(f"collector not attached: {perf_cgroup}")
        self.kernel.perf.disable(perf_cgroup)
        del self._container_marks[perf_cgroup]

    def attached(self, perf_cgroup: Cgroup) -> bool:
        """Whether a cgroup is under collection."""
        return perf_cgroup in self._container_marks

    def collect(self, perf_cgroup: Cgroup) -> PerfWindow:
        """Counters since the last collect() for this container."""
        mark = self._container_marks.get(perf_cgroup)
        if mark is None:
            raise DefenseError(f"collector not attached: {perf_cgroup}")
        current = perf_cgroup.state.counters
        delta = current.delta(mark)
        self._container_marks[perf_cgroup] = current.snapshot()
        return _window(delta)

    def peek(self, perf_cgroup: Cgroup) -> PerfWindow:
        """Like collect() but without advancing the mark."""
        mark = self._container_marks.get(perf_cgroup)
        if mark is None:
            raise DefenseError(f"collector not attached: {perf_cgroup}")
        return _window(perf_cgroup.state.counters.delta(mark))

    def collect_host(self) -> PerfWindow:
        """Host-wide counters since the last collect_host()."""
        current = self.kernel.perf.host_counters
        delta = current.delta(self._host_mark)
        self._host_mark = current.snapshot()
        return _window(delta)
