"""Stage-1 defense: mask the discovered channels (Section V-A).

``generate_masking_policy`` turns a cross-validation report into a deny
policy covering every leaking path — what a cloud operator can deploy
*today* without kernel changes. ``verify_masking`` re-runs the detector
under the policy and reports any channel still open.

The stage's inherent cost is also modelled: masking breaks legitimate
in-container monitoring (``free``, ``top``, Prometheus node exporters all
read masked files), quantified by :func:`functionality_impact`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.detection.crossvalidate import CrossValidationReport, CrossValidator
from repro.procfs.vfs import PseudoVFS
from repro.runtime.container import Container
from repro.runtime.policy import MaskingPolicy

#: pseudo-files that common legitimate tooling reads inside containers;
#: masking these degrades tenant functionality (the stage-1 trade-off the
#: paper concedes: "it may add restrictions for the functionality").
LEGITIMATE_USES: Dict[str, str] = {
    "/proc/meminfo": "free(1), container memory dashboards",
    "/proc/stat": "top(1), CPU utilization exporters",
    "/proc/cpuinfo": "runtime feature detection (nproc, OpenMP)",
    "/proc/loadavg": "load-based autoscalers",
    "/proc/uptime": "health checks",
    "/proc/version": "support tooling, bug reports",
}


def generate_masking_policy(
    report: CrossValidationReport, name: str = "stage1-masking"
) -> MaskingPolicy:
    """Deny every path the cross-validation classified as leaking."""
    policy = MaskingPolicy(name=name)
    for path in report.leaks:
        policy.deny(path)
    return policy


def verify_masking(vfs: PseudoVFS, container: Container) -> List[str]:
    """Re-run the detector against a masked container; returns open leaks.

    An empty list means stage 1 closed everything the detector can see.
    """
    report = CrossValidator(vfs, container).run()
    return report.leaks


def functionality_impact(policy: MaskingPolicy) -> Dict[str, str]:
    """Legitimate uses broken by a policy: path -> what stops working."""

    class _Probe:
        """Minimal stand-in node for policy evaluation."""

        channel = None
        namespaced = False

    broken = {}
    for path, use in LEGITIMATE_USES.items():
        decision = policy.check(path, _Probe())
        if decision.denied or decision.hidden:
            broken[path] = use
    return broken


def mask_everything_policy(paths: Iterable[str]) -> MaskingPolicy:
    """The maximal stage-1 policy: deny every known channel path."""
    policy = MaskingPolicy(name="mask-all-channels")
    for path in paths:
        policy.deny(path)
    return policy
