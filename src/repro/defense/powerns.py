"""The power-based namespace driver (Section V-B, Figure 5).

This is the reproduction of the paper's kernel modification. Installing
the driver:

1. registers the new POWER namespace type (new containers get an instance
   automatically; existing ones are adopted),
2. hooks the RAPL ``energy_uj`` read path — the same seam the paper's
   modified ``get_energy_counter`` patches,
3. on every containerized read, runs the Figure 5 pipeline: *data
   collection* (per-cgroup perf deltas) → *power modelling* (Formula 2) →
   *on-the-fly calibration* (Formula 3) — and serves the container its
   own accumulated energy through the **unchanged interface**.

Host-context reads still see the hardware counter, so host tooling (and
the cloud's own power management) keep working.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.defense.calibration import CalibratedAttribution
from repro.defense.collection import ContainerPerfCollector
from repro.defense.modeling import TrainedPowerModel
from repro.errors import DefenseError
from repro.kernel.cgroups import PerfCounters
from repro.kernel.kernel import Kernel
from repro.kernel.namespaces import Namespace, NamespaceType
from repro.kernel.process import Task
from repro.kernel.rapl import RaplDomain, unwrap_delta
from repro.runtime.container import Container
from repro.runtime.engine import ContainerEngine


@dataclass
class _ContainerPowerState:
    """Per-container virtual RAPL counters and collection marks."""

    container: Container
    power_ns: Namespace
    #: virtual energy counters in µJ, keyed by (package_id, domain kind)
    energy_uj: Dict[tuple, float] = field(default_factory=dict)
    host_perf_mark: Optional[PerfCounters] = None
    #: hardware package counter marks, one per package
    rapl_pkg_marks_uj: Dict[int, int] = field(default_factory=dict)
    last_update: float = 0.0


class PowerNamespaceDriver:
    """Installs and operates the power-based namespace on one kernel."""

    def __init__(
        self,
        kernel: Kernel,
        model: TrainedPowerModel,
        attribution_factory: Callable[..., object] = CalibratedAttribution,
        idle_share: str = "full",
    ):
        self.kernel = kernel
        if not kernel.rapl.present:
            raise DefenseError("power namespace needs RAPL hardware")
        self.model = model
        self.attribution = attribution_factory(model, idle_share=idle_share)
        self.idle_share = idle_share
        self.collector = ContainerPerfCollector(kernel)
        self._states: Dict[Namespace, _ContainerPowerState] = {}
        kernel.namespaces.enable_type(NamespaceType.POWER)
        kernel.rapl_read_hook = self._read_energy
        self.installed = True

    # ------------------------------------------------------------------
    # container lifecycle

    def adopt(self, container: Container) -> None:
        """Bring a container under the power namespace.

        Containers created *before* the driver was installed lack a POWER
        namespace; adoption creates one and rewires the container's tasks,
        mirroring how cgroup/v2-era kernels migrate running workloads.
        """
        registry = self.kernel.namespaces
        power_ns = container.namespaces.get(NamespaceType.POWER)
        if power_ns is None or power_ns.is_root:
            power_ns = registry.create(NamespaceType.POWER)
            container.namespaces[NamespaceType.POWER] = power_ns
            for task in container.tasks:
                task.namespaces[NamespaceType.POWER] = power_ns
        if power_ns in self._states:
            raise DefenseError(f"container already adopted: {container.name}")

        perf_cgroup = container.cgroup_set["perf_event"]
        if not self.collector.attached(perf_cgroup):
            self.collector.attach(perf_cgroup)
        state = _ContainerPowerState(container=container, power_ns=power_ns)
        state.host_perf_mark = self.kernel.perf.host_counters.snapshot()
        for pkg in self.kernel.rapl.packages:
            state.rapl_pkg_marks_uj[pkg.package_id] = pkg.package.energy_uj
            for kind in ("package", "core", "dram"):
                state.energy_uj[(pkg.package_id, kind)] = 0.0
        state.last_update = self.kernel.clock.now
        self._states[power_ns] = state

    def release(self, container: Container) -> None:
        """Detach a (stopping) container from the namespace."""
        power_ns = container.namespaces.get(NamespaceType.POWER)
        state = self._states.pop(power_ns, None)
        if state is None:
            raise DefenseError(f"container not adopted: {container.name}")
        perf_cgroup = container.cgroup_set["perf_event"]
        if self.collector.attached(perf_cgroup):
            self.collector.detach(perf_cgroup)

    def watch_engine(self, engine: ContainerEngine) -> None:
        """Auto-adopt every container this engine creates from now on."""
        engine.container_created_listeners.append(self.adopt)

    @property
    def adopted_count(self) -> int:
        """Number of containers currently under the namespace."""
        return len(self._states)

    # ------------------------------------------------------------------
    # the modified read path

    def _read_energy(self, reader: Optional[Task], domain: RaplDomain) -> int:
        """The hooked ``get_energy_counter``."""
        state = self._state_for(reader)
        if state is None:
            # host context (or an unadopted legacy container): hardware view
            return domain.energy_uj
        self._update(state)
        kind = self._domain_kind(domain)
        key = (domain.package_id, kind)
        return int(state.energy_uj[key] % domain.max_energy_range_uj)

    def _state_for(self, reader: Optional[Task]) -> Optional[_ContainerPowerState]:
        if reader is None:
            return None
        power_ns = reader.namespaces.get(NamespaceType.POWER)
        if power_ns is None or power_ns.is_root:
            return None
        return self._states.get(power_ns)

    @staticmethod
    def _domain_kind(domain: RaplDomain) -> str:
        if domain.name.startswith("package"):
            return "package"
        if domain.name in ("core", "dram"):
            return domain.name
        raise DefenseError(f"unknown RAPL domain: {domain.name}")

    def _update(self, state: _ContainerPowerState) -> None:
        """Figure 5's pipeline for one container, once per time step."""
        now = self.kernel.clock.now
        dt = now - state.last_update
        if dt <= 0:
            return

        # data collection
        container_window = self.collector.collect(
            state.container.cgroup_set["perf_event"]
        )
        host_delta = self.kernel.perf.host_counters.delta(state.host_perf_mark)
        state.host_perf_mark = self.kernel.perf.host_counters.snapshot()
        from repro.defense.collection import PerfWindow

        host_window = PerfWindow(
            cycles=host_delta.cycles,
            instructions=host_delta.instructions,
            cache_misses=host_delta.cache_misses,
            branch_misses=host_delta.branch_misses,
        )

        # measured hardware energy, per package and in total
        pkg_deltas_j: Dict[int, float] = {}
        for pkg in self.kernel.rapl.packages:
            hw_now = pkg.package.energy_uj
            mark = state.rapl_pkg_marks_uj[pkg.package_id]
            pkg_deltas_j[pkg.package_id] = unwrap_delta(hw_now, mark) / 1e6
            state.rapl_pkg_marks_uj[pkg.package_id] = hw_now
        e_rapl_j = sum(pkg_deltas_j.values())

        # power modelling + on-the-fly calibration (host-wide)
        e_total_j = self.attribution.attribute_j(
            container_window, host_window, e_rapl_j, dt
        )

        # split the credit across packages in proportion to measured
        # per-package energy (perf counters are not package-local, so the
        # measured split is the best available attribution), then into
        # core/dram in proportion to the modelled components (+ idle
        # floors when the namespace presents them)
        m_core = self.model.core_active_j(container_window)
        m_dram = self.model.dram_active_j(container_window)
        if self.idle_share == "full":
            m_core += self.model.idle_core_watts * dt
            m_dram += self.model.idle_dram_watts * dt
        total_model = m_core + m_dram
        core_fraction = m_core / total_model if total_model > 0 else 0.5

        for package_id, delta_j in pkg_deltas_j.items():
            share = delta_j / e_rapl_j if e_rapl_j > 0 else 1.0 / max(
                1, len(pkg_deltas_j)
            )
            e_pkg_j = e_total_j * share
            state.energy_uj[(package_id, "package")] += e_pkg_j * 1e6
            state.energy_uj[(package_id, "core")] += (
                e_pkg_j * core_fraction * 1e6
            )
            state.energy_uj[(package_id, "dram")] += (
                e_pkg_j * (1.0 - core_fraction) * 1e6
            )
        state.last_update = now
