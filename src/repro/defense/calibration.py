"""On-the-fly calibration (Section V-B-3, Formula 3).

The model's absolute scale is imperfect (form error, parameter drift,
architecture effects). Calibration sidesteps that by modelling *both* the
container and the whole host over the same window and scaling by the
measured RAPL truth:

    E_container = (M_container / M_host) · E_RAPL.

Model-form errors common to numerator and denominator cancel, which is
why the paper's errors stay under 5% despite a simple F. The
uncalibrated :class:`RawAttribution` is kept for the ablation benchmark.
"""

from __future__ import annotations

from repro.defense.collection import PerfWindow
from repro.defense.modeling import TrainedPowerModel
from repro.errors import DefenseError


class CalibratedAttribution:
    """Formula 3: scale modelled shares by the measured host energy."""

    def __init__(self, model: TrainedPowerModel, idle_share: str = "none"):
        if idle_share not in ("none", "full"):
            raise DefenseError(f"unknown idle_share policy: {idle_share}")
        self.model = model
        self.idle_share = idle_share

    def attribute_j(
        self,
        container_window: PerfWindow,
        host_window: PerfWindow,
        e_rapl_j: float,
        dt: float,
    ) -> float:
        """Energy (J) to credit a container for one window.

        ``e_rapl_j`` is the measured host package energy over the window.
        The container receives its calibrated share of the *active* energy
        plus, under ``idle_share="full"``, the host idle floor — the
        presentation Figure 9 uses (an idle container reads the same level
        as an idle host).
        """
        if dt <= 0:
            raise DefenseError(f"window must have positive duration: {dt}")
        if e_rapl_j < 0:
            raise DefenseError(f"negative measured energy: {e_rapl_j}")
        m_container = self.model.active_j(container_window)
        m_host_active = self.model.active_j(host_window)
        idle_j = (
            self.model.idle_core_watts
            + self.model.idle_dram_watts
            + self.model.lambda_watts
        ) * dt
        e_active = max(0.0, e_rapl_j - idle_j)
        if m_host_active <= 0.0:
            share = 0.0
        else:
            share = min(1.0, m_container / m_host_active) * e_active
        if self.idle_share == "full":
            return share + min(idle_j, e_rapl_j)
        return share


class RawAttribution:
    """The ablation baseline: trust the model's absolute output.

    No rescaling by measured RAPL — model-form error lands directly in
    the reading. The calibration ablation benchmark compares this against
    :class:`CalibratedAttribution`.
    """

    def __init__(self, model: TrainedPowerModel, idle_share: str = "none"):
        if idle_share not in ("none", "full"):
            raise DefenseError(f"unknown idle_share policy: {idle_share}")
        self.model = model
        self.idle_share = idle_share

    def attribute_j(
        self,
        container_window: PerfWindow,
        host_window: PerfWindow,
        e_rapl_j: float,
        dt: float,
    ) -> float:
        """Energy (J) to credit a container: the model's raw output."""
        if dt <= 0:
            raise DefenseError(f"window must have positive duration: {dt}")
        share = self.model.active_j(container_window)
        if self.idle_share == "full":
            idle_j = (
                self.model.idle_core_watts
                + self.model.idle_dram_watts
                + self.model.lambda_watts
            ) * dt
            return share + idle_j
        return share
