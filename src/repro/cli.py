"""Command-line interface: the paper's tooling as a shippable utility.

Subcommands mirror the workflow of the paper's figures:

- ``repro scan``     — cross-validate a local testbed (Figure 1, left).
- ``repro rank``     — U/V/M assessment and Table II ranking.
- ``repro inspect``  — probe the provider profiles (Table I).
- ``repro attack``   — a small synergistic-vs-periodic comparison (Fig 3).
- ``repro fleet``    — run the datacenter fleet simulation and report the
  wall-power trace (Figure 2's substrate), optionally rack-sharded
  across worker processes (``--parallel``).
- ``repro defend``   — train the model, install the namespace, report
  transparency and accuracy (Figures 8/9, abridged).
- ``repro trace``    — re-run ``fleet``/``attack``/``defend`` with span
  tracing enabled and export a Chrome ``trace_event`` timeline
  (``docs/observability.md``).
- ``repro ops serve`` — run a fleet campaign with the live operations
  plane: streamed metrics JSONL, trace spill, and ``/metrics`` /
  ``/status`` / ``/healthz`` pull endpoints (``docs/ops.md``).
- ``repro status``   — summarize an ops directory's metrics stream.
- ``repro metrics``  — run a short fleet simulation and dump the unified
  metric registry.

Run via ``python -m repro <subcommand>`` or the ``containerleaks``
console script.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _export_trace(tracer, args: argparse.Namespace, sim=None) -> None:
    """Write the merged timeline to the formats the user asked for.

    With ``sim`` given the export carries per-process ring health
    (drops/spills, worker counters collected over one state barrier) so
    ``repro.obs.validate`` can flag silently incomplete timelines.
    """
    from repro.obs.export import to_chrome_trace, to_jsonl

    if sim is not None:
        health = sim.trace_health()
    else:
        health = {tracer.track: tracer.health()}
    events = tracer.timeline()
    count = to_chrome_trace(events, args.trace_out, health=health)
    print(f"trace: {count} events -> {args.trace_out}")
    jsonl = getattr(args, "trace_jsonl", None)
    if jsonl:
        n = to_jsonl(events, jsonl)
        print(f"trace: {n} events -> {jsonl} (jsonl)")
    spilled = sum(h["spilled"] for h in health.values())
    if spilled:
        print(f"trace: {spilled} events stitched from spill segments")
    dropped = sum(h["dropped"] for h in health.values())
    if dropped:
        print(
            f"trace: ring buffer(s) dropped {dropped} events"
            " (raise capacity or enable spill)",
            file=sys.stderr,
        )


def _cmd_scan(args: argparse.Namespace) -> int:
    from repro.detection.crossvalidate import CrossValidator, LeakClass
    from repro.kernel.kernel import Machine
    from repro.runtime.engine import ContainerEngine

    machine = Machine(seed=args.seed)
    engine = ContainerEngine(machine.kernel)
    probe = engine.create(name="probe")
    machine.run(5, dt=1.0)
    report = CrossValidator(engine.vfs, probe).run()
    for leak_class in LeakClass:
        paths = report.paths_in(leak_class)
        print(f"{leak_class.value:<12} {len(paths):>4} files")
    print(f"leaking channels: {len(report.leaking_channels())}")
    if args.verbose:
        for path in report.leaks:
            print(f"  LEAK {path}")
    return 0


def _cmd_rank(args: argparse.Namespace) -> int:
    from repro.detection.metrics import ChannelAssessor, Manipulation

    assessor = ChannelAssessor(
        seed=args.seed, snapshots=args.snapshots, interval_s=5.0
    )
    glyph = {Manipulation.DIRECT: "●", Manipulation.INDIRECT: "◐",
             Manipulation.NONE: "○"}
    print(f"{'rank':<5}{'channel':<46}{'U':<3}{'V':<3}{'M':<3}{'group'}")
    for rank, a in enumerate(assessor.assess_all(), start=1):
        print(
            f"{rank:<5}{a.channel_id:<46}"
            f"{'●' if a.unique else '○':<3}{'●' if a.varies else '○':<3}"
            f"{glyph[a.manipulation]:<3}{a.group.value}"
        )
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.detection.inspector import format_table1, inspect_all
    from repro.runtime.cloud import PROVIDER_PROFILES, ContainerCloud

    wanted = args.providers or sorted(PROVIDER_PROFILES)
    unknown = [p for p in wanted if p not in PROVIDER_PROFILES]
    if unknown:
        print(f"unknown providers: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(sorted(PROVIDER_PROFILES))}",
              file=sys.stderr)
        return 2
    clouds = {
        name: ContainerCloud(PROVIDER_PROFILES[name], seed=args.seed, servers=1)
        for name in wanted
    }
    print(format_table1(inspect_all(clouds)))
    print("\nlegend: ● available  ◐ partial  ○ masked/absent")
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    import multiprocessing

    from repro.attack.monitor import CrestDetector
    from repro.attack.strategies import PeriodicAttack, SynergisticAttack
    from repro.datacenter.simulation import DatacenterSimulation
    from repro.datacenter.tenants import DiurnalProfile

    if args.parallel and "spawn" not in multiprocessing.get_all_start_methods():
        print(
            "error: --parallel needs the 'spawn' process start method,"
            " which this platform does not provide; run without --parallel",
            file=sys.stderr,
        )
        return 2
    flag_error = _check_resilience_args(args)
    if flag_error:
        print(f"error: {flag_error}", file=sys.stderr)
        return 2
    tenants = DiurnalProfile(
        base_cores=1.0, peak_cores=1.5, bursts_per_day=200.0,
        burst_cores=5.0, burst_duration_s=45.0, noise=0.05,
    )
    trace_out = getattr(args, "trace_out", None)

    def setup(trace=False, resilient=False):
        sim = DatacenterSimulation(
            servers=args.servers, seed=args.seed, sample_interval_s=1.0,
            tenant_profile=tenants,
        )
        if trace:
            sim.enable_tracing()
        # only the synergistic campaign checkpoints; the periodic
        # baseline is cheap to rerun from scratch
        if resilient and args.checkpoint_dir:
            sim.enable_resilience(
                checkpoint_dir=args.checkpoint_dir,
                checkpoint_every=args.checkpoint_every,
            )
        instances, covered = [], set()
        while len(covered) < args.servers:
            inst = sim.cloud.launch_instance("attacker")
            if inst.host_index in covered:
                sim.cloud.terminate_instance(inst)
            else:
                covered.add(inst.host_index)
                instances.append(inst)
        # the first run decides the execution mode: with --parallel the
        # warmup shards the fleet, and the strategies built afterwards
        # get shard-resident monitors automatically
        sim.run(300.0, dt=1.0, parallel=args.parallel,
                resume=resilient and args.resume,
                control_plane=args.control_plane)
        return sim, instances

    mode = f" (parallel x{args.parallel})" if args.parallel else ""
    resumed = " [resumed]" if args.resume else ""
    print(f"running synergistic attack on {args.servers} servers{mode}"
          f"{resumed}...")
    sim_s, inst_s = setup(trace=bool(trace_out), resilient=True)
    try:
        syn = SynergisticAttack(
            sim_s, inst_s, burst_s=30.0, cooldown_s=300.0, max_trials=2,
            learn_s=400.0,
            detector_factory=lambda: CrestDetector(
                window=2000, threshold_fraction=0.85, min_band_watts=15.0
            ),
            resume_key="synergistic" if args.checkpoint_dir else None,
        ).run(args.duration)
        if trace_out:
            _export_trace(sim_s.tracer, args, sim_s)
    finally:
        sim_s.close()
    print("running periodic baseline...")
    sim_p, inst_p = setup()
    try:
        per = PeriodicAttack(sim_p, inst_p, burst_s=30.0, period_s=300.0).run(
            args.duration
        )
    finally:
        sim_p.close()
    print(f"\n{'strategy':>13}{'peak W':>9}{'trials':>8}{'cpu-s':>9}")
    for out in (syn, per):
        print(f"{out.strategy:>13}{out.peak_watts:>9.0f}{out.trials:>8}"
              f"{out.attacker_cpu_seconds:>9.0f}")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    import multiprocessing

    from repro.datacenter.simulation import DatacenterSimulation
    from repro.sim.faults import FaultSchedule

    if args.parallel and "spawn" not in multiprocessing.get_all_start_methods():
        print(
            "error: --parallel needs the 'spawn' process start method,"
            " which this platform does not provide; run without --parallel",
            file=sys.stderr,
        )
        return 2
    flag_error = _check_resilience_args(args)
    if flag_error:
        print(f"error: {flag_error}", file=sys.stderr)
        return 2
    sim = DatacenterSimulation(
        servers=args.servers,
        rack_size=args.rack_size,
        seed=args.seed,
        sample_interval_s=args.sample_interval,
    )
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        sim.enable_tracing()
    if args.checkpoint_dir:
        sim.enable_resilience(
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
        )
    if args.faults:
        sim.install_faults(
            FaultSchedule.standard(
                args.seed, args.duration,
                servers=args.servers, racks=len(sim.racks),
            )
        )
    mode = f"parallel x{args.parallel}" if args.parallel else "serial"
    print(
        f"running {args.servers} servers / {len(sim.racks)} racks for "
        f"{args.duration:.0f}s ({mode}"
        f"{', coalescing' if args.coalesce else ''}"
        f"{', resumed' if args.resume else ''})..."
    )
    try:
        sim.run(
            args.duration, dt=args.dt,
            coalesce=args.coalesce, parallel=args.parallel,
            resume=args.resume, control_plane=args.control_plane,
        )
        trace = sim.aggregate_trace
        print(
            f"samples {len(trace)}  peak {trace.peak:.0f} W  "
            f"trough {trace.trough:.0f} W  mean {trace.mean:.0f} W  "
            f"swing {trace.swing_fraction * 100:.2f}%"
        )
        print(
            f"ticks {sim.metrics.ticks}  "
            f"reduction {sim.metrics.tick_reduction:.1f}x  "
            f"wall {sim.metrics.wall_seconds:.2f}s"
        )
        for line in sim.trip_log():
            print(f"  {line}")
        report = sim.fault_report()
        if report:
            injected = sum(
                n for key, n in report.items() if key.startswith("injected:")
            )
            print(f"faults injected: {injected}  "
                  f"trace gaps: {report['trace-gap-samples']}")
        if trace_out:
            _export_trace(sim.tracer, args, sim)
    finally:
        sim.close()
    return 0


def _cmd_defend(args: argparse.Namespace) -> int:
    from repro.defense.modeling import PowerModeler, TrainingHarness
    from repro.defense.powerns import PowerNamespaceDriver
    from repro.kernel.kernel import Machine
    from repro.kernel.rapl import unwrap_delta
    from repro.runtime.benchmarks import SPEC_BENCHMARKS
    from repro.runtime.engine import ContainerEngine

    print("training the Formula 2 power model...")
    trace_out = getattr(args, "trace_out", None)
    tracer = None
    harness_kwargs = dict(seed=args.seed, window_s=5.0,
                          windows_per_benchmark=8)
    if trace_out:
        from repro.obs.tracer import SpanTracer

        training_machine = Machine(seed=args.seed)
        tracer = SpanTracer(
            now_fn=lambda: training_machine.clock.now, track="defense"
        )
        harness_kwargs.update(machine=training_machine, tracer=tracer)
    harness = TrainingHarness(**harness_kwargs)
    harness.run_all()
    model = PowerModeler(form="paper").fit(harness)
    print(f"  core R^2={model.core_model.r_squared:.4f} "
          f"dram R^2={model.dram_model.r_squared:.4f}")

    machine = Machine(seed=args.seed + 1)
    engine = ContainerEngine(machine.kernel)
    PowerNamespaceDriver(machine.kernel, model).watch_engine(engine)
    worker = engine.create(name="worker", cpus=4)
    for core in range(4):
        worker.exec(f"w{core}",
                    workload=SPEC_BENCHMARKS["401.bzip2"].workload())
    machine.run(5, dt=1.0)

    path = "/sys/class/powercap/intel-rapl:0/energy_uj"
    pkg = machine.kernel.rapl.package(0).package
    h0, c0 = pkg.energy_uj, int(worker.read(path))
    machine.run(60, dt=1.0)
    e_rapl = unwrap_delta(pkg.energy_uj, h0) / 1e6
    e_container = unwrap_delta(int(worker.read(path)), c0) / 1e6
    xi = abs(e_rapl - e_container) / e_rapl
    print(f"accuracy: host {e_rapl:.0f} J vs container {e_container:.0f} J "
          f"-> xi={xi:.4f} (paper bound 0.05)")
    if trace_out:
        _export_trace(tracer, args)
    return 0 if xi < 0.05 else 1


def _cmd_ops_serve(args: argparse.Namespace) -> int:
    """A fleet campaign with the live operations plane attached.

    Streams registry snapshots into ``<ops dir>/metrics.jsonl``, spills
    ring-evicted trace events into ``<ops dir>/spill/``, serves
    ``/metrics``, ``/status`` and ``/healthz`` on ``--port`` while the
    campaign runs, and exports the stitched timeline to
    ``<ops dir>/trace.json`` at the end. ``--hold`` keeps the endpoint
    up for N wall seconds after the run so late readers (CI curls,
    dashboards) still get the final state.
    """
    import multiprocessing
    import os
    import time

    from repro.datacenter.simulation import DatacenterSimulation
    from repro.obs.export import to_chrome_trace
    from repro.sim.faults import FaultSchedule

    if args.parallel and "spawn" not in multiprocessing.get_all_start_methods():
        print(
            "error: --parallel needs the 'spawn' process start method,"
            " which this platform does not provide; run without --parallel",
            file=sys.stderr,
        )
        return 2
    flag_error = _check_resilience_args(args)
    if flag_error:
        print(f"error: {flag_error}", file=sys.stderr)
        return 2
    sim = DatacenterSimulation(
        servers=args.servers,
        rack_size=args.rack_size,
        seed=args.seed,
        sample_interval_s=args.sample_interval,
    )
    spill_dir = os.path.join(args.ops_dir, "spill")
    sim.enable_tracing(capacity=args.spill_capacity, spill_dir=spill_dir)
    if args.checkpoint_dir:
        sim.enable_resilience(
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
        )
    if args.faults:
        sim.install_faults(
            FaultSchedule.standard(
                args.seed, args.duration,
                servers=args.servers, racks=len(sim.racks),
            )
        )
    ops = sim.enable_ops(
        args.ops_dir,
        every_sim_s=args.metrics_every,
        every_wall_s=args.metrics_every_wall,
        port=args.port,
    )
    mode = f"parallel x{args.parallel}" if args.parallel else "serial"
    print(f"ops: serving {ops.server.url} "
          f"(/metrics /status /healthz)", flush=True)
    print(
        f"running {args.servers} servers / {len(sim.racks)} racks for "
        f"{args.duration:.0f}s ({mode}"
        f"{', resumed' if args.resume else ''})...",
        flush=True,
    )
    try:
        sim.run(
            args.duration, dt=args.dt,
            coalesce=args.coalesce, parallel=args.parallel,
            resume=args.resume, control_plane=args.control_plane,
        )
        trace = sim.aggregate_trace
        print(
            f"samples {len(trace)}  peak {trace.peak:.0f} W  "
            f"trough {trace.trough:.0f} W  mean {trace.mean:.0f} W"
        )
        health = sim.trace_health()
        trace_path = os.path.join(args.ops_dir, "trace.json")
        count = to_chrome_trace(sim.tracer.timeline(), trace_path, health=health)
        spilled = sum(h["spilled"] for h in health.values())
        print(f"trace: {count} events -> {trace_path}"
              f" ({spilled} stitched from spill)")
        print(f"ops: metrics stream -> "
              f"{os.path.join(args.ops_dir, 'metrics.jsonl')}", flush=True)
        if args.hold > 0:
            print(f"ops: holding endpoint for {args.hold:.0f}s...", flush=True)
            time.sleep(args.hold)
    finally:
        sim.close()
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    """Tail an ops directory's metrics stream after (or during) a run."""
    from repro.obs.ops import render_stream_tail

    try:
        print(render_stream_tail(args.ops_dir))
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.datacenter.simulation import DatacenterSimulation

    sim = DatacenterSimulation(
        servers=args.servers, seed=args.seed, sample_interval_s=1.0
    )
    sim.enable_subsystem_timings()
    try:
        sim.run(args.duration, dt=1.0, coalesce=args.coalesce)
    finally:
        sim.close()
    if args.json:
        import json

        print(json.dumps(sim.metrics.registry.snapshot(), indent=2,
                         sort_keys=True))
    else:
        print(sim.metrics.registry.render())
    return 0


def _add_resilience_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="write deterministic checkpoints here every"
                             " --checkpoint-every sim-seconds (parallel"
                             " only; docs/resilience.md)")
    parser.add_argument("--checkpoint-every", type=float, default=300.0,
                        metavar="S",
                        help="checkpoint interval in simulated seconds")
    parser.add_argument("--resume", action="store_true",
                        help="restart from the latest checkpoint in"
                             " --checkpoint-dir instead of starting fresh"
                             " (bit-identical to an uninterrupted run)")


def _check_resilience_args(args: argparse.Namespace) -> Optional[str]:
    """Validate the checkpoint/resume flag combination (None = fine)."""
    if args.checkpoint_dir and not args.parallel:
        return ("--checkpoint-dir requires --parallel: the sharded engine"
                " writes the snapshots")
    if args.resume and not args.checkpoint_dir:
        return "--resume requires --checkpoint-dir to restore from"
    return None


def _add_attack_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--servers", type=int, default=4)
    parser.add_argument("--duration", type=float, default=1200.0,
                        help="attack window in simulated seconds")
    parser.add_argument("--parallel", type=int, default=0, metavar="N",
                        help="rack-shard the fleet across N spawn worker"
                             " processes with shard-resident attacker"
                             " monitors (0 = serial; docs/parallel.md)")
    parser.add_argument("--control-plane", choices=("pipe", "shm"),
                        default="shm",
                        help="parallel barrier transport: shm slot plane"
                             " with batched epochs (default) or the classic"
                             " pickled pipes (docs/parallel.md)")
    _add_resilience_args(parser)


def _add_fleet_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--servers", type=int, default=8)
    parser.add_argument("--rack-size", type=int, default=8,
                        help="servers per rack (one breaker each)")
    parser.add_argument("--duration", type=float, default=3600.0,
                        help="virtual seconds to simulate")
    parser.add_argument("--dt", type=float, default=1.0,
                        help="base tick in virtual seconds")
    parser.add_argument("--sample-interval", type=float, default=1.0,
                        help="trace sampling interval in virtual seconds")
    parser.add_argument("--coalesce", action="store_true",
                        help="enable tick coalescing (docs/fastforward.md)")
    parser.add_argument("--parallel", type=int, default=0, metavar="N",
                        help="rack-shard across N spawn worker processes"
                             " (0 = serial; docs/parallel.md)")
    parser.add_argument("--control-plane", choices=("pipe", "shm"),
                        default="shm",
                        help="parallel barrier transport: shm slot plane"
                             " with batched epochs (default) or the classic"
                             " pickled pipes (docs/parallel.md)")
    parser.add_argument("--faults", action="store_true",
                        help="install the standard chaos fault schedule")
    _add_resilience_args(parser)


def _add_trace_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--out", dest="trace_out", default="trace.json",
                        metavar="PATH",
                        help="Chrome trace_event output file"
                             " (open in chrome://tracing or Perfetto)")
    parser.add_argument("--jsonl", dest="trace_jsonl", default=None,
                        metavar="PATH",
                        help="also export the merged timeline as JSONL")


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="containerleaks",
        description="ContainerLeaks (DSN'17) reproduction tooling",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--seed", type=int, default=0,
                        help="deterministic simulation seed")
    sub = parser.add_subparsers(dest="command", required=True)

    p_scan = sub.add_parser("scan", parents=[common],
                            help="cross-validate a local testbed")
    p_scan.add_argument("-v", "--verbose", action="store_true",
                        help="list every leaking path")
    p_scan.set_defaults(func=_cmd_scan)

    p_rank = sub.add_parser("rank", parents=[common],
                           help="U/V/M channel ranking (Table II)")
    p_rank.add_argument("--snapshots", type=int, default=8,
                        help="snapshots per channel probe")
    p_rank.set_defaults(func=_cmd_rank)

    p_inspect = sub.add_parser("inspect", parents=[common],
                               help="probe provider profiles (Table I)")
    p_inspect.add_argument("providers", nargs="*",
                           help="provider names (default: all)")
    p_inspect.set_defaults(func=_cmd_inspect)

    p_attack = sub.add_parser("attack", parents=[common],
                              help="synergistic vs periodic comparison")
    _add_attack_args(p_attack)
    p_attack.set_defaults(func=_cmd_attack)

    p_fleet = sub.add_parser("fleet", parents=[common],
                             help="run the datacenter fleet simulation")
    _add_fleet_args(p_fleet)
    p_fleet.set_defaults(func=_cmd_fleet)

    p_defend = sub.add_parser("defend", parents=[common],
                              help="train + install the power namespace")
    p_defend.set_defaults(func=_cmd_defend)

    p_trace = sub.add_parser(
        "trace",
        help="run a subcommand with span tracing and export the timeline",
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    t_fleet = trace_sub.add_parser("fleet", parents=[common],
                                   help="traced fleet simulation")
    _add_fleet_args(t_fleet)
    _add_trace_args(t_fleet)
    t_fleet.set_defaults(func=_cmd_fleet)
    t_attack = trace_sub.add_parser("attack", parents=[common],
                                    help="traced synergistic attack")
    _add_attack_args(t_attack)
    _add_trace_args(t_attack)
    t_attack.set_defaults(func=_cmd_attack)
    t_defend = trace_sub.add_parser("defend", parents=[common],
                                    help="traced defense training")
    _add_trace_args(t_defend)
    t_defend.set_defaults(func=_cmd_defend)

    p_ops = sub.add_parser(
        "ops",
        help="live operations plane: streamed metrics + pull endpoints",
    )
    ops_sub = p_ops.add_subparsers(dest="ops_command", required=True)
    o_serve = ops_sub.add_parser(
        "serve", parents=[common],
        help="run a fleet campaign with the ops plane attached"
             " (docs/ops.md)",
    )
    _add_fleet_args(o_serve)
    o_serve.add_argument("--ops-dir", default="ops", metavar="DIR",
                         help="ops artifact directory (metrics.jsonl,"
                              " spill/, trace.json)")
    o_serve.add_argument("--port", type=int, default=0, metavar="PORT",
                         help="HTTP port for /metrics /status /healthz"
                              " (0 = pick a free one)")
    o_serve.add_argument("--metrics-every", type=float, default=60.0,
                         metavar="S",
                         help="append a registry snapshot every S"
                              " sim-seconds")
    o_serve.add_argument("--metrics-every-wall", type=float, default=None,
                         metavar="S",
                         help="also append every S wall seconds")
    o_serve.add_argument("--spill-capacity", type=int, default=65536,
                         metavar="N",
                         help="tracer ring capacity; evictions spill to"
                              " <ops-dir>/spill instead of dropping")
    o_serve.add_argument("--hold", type=float, default=0.0, metavar="S",
                         help="keep serving S wall seconds after the run")
    o_serve.set_defaults(func=_cmd_ops_serve)

    p_status = sub.add_parser(
        "status",
        help="summarize an ops directory's metrics stream",
    )
    p_status.add_argument("ops_dir", metavar="DIR",
                          help="ops directory written by 'ops serve' or"
                               " enable_ops()")
    p_status.set_defaults(func=_cmd_status)

    p_metrics = sub.add_parser(
        "metrics", parents=[common],
        help="run a short fleet sim and dump the metric registry",
    )
    p_metrics.add_argument("--servers", type=int, default=4)
    p_metrics.add_argument("--duration", type=float, default=600.0,
                           help="virtual seconds to simulate")
    p_metrics.add_argument("--coalesce", action="store_true",
                           help="enable tick coalescing")
    p_metrics.add_argument("--json", action="store_true",
                           help="emit the registry snapshot as JSON")
    p_metrics.set_defaults(func=_cmd_metrics)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
