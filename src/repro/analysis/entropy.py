"""Shannon entropy of leakage-channel observations (Formula 1).

The paper ranks time-varying channels by the *joint Shannon entropy* of
their independent data fields: each channel C contains fields X_i, and

    H[C(X_1..X_n)] = Σ_i  −Σ_j p(x_ij) log p(x_ij).

Higher joint entropy ⇒ more distinguishing information per snapshot ⇒
better co-residence evidence (Table II's ranking of the V-only group).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Sequence


def field_entropy(observations: Sequence[object]) -> float:
    """Shannon entropy (bits) of one field's observed value distribution.

    Probabilities are estimated empirically from the observations; a
    constant field has zero entropy, a never-repeating field has
    ``log2(n)``.
    """
    if not observations:
        return 0.0
    counts = Counter(observations)
    total = len(observations)
    entropy = 0.0
    for count in counts.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def joint_entropy(fields: Dict[str, Sequence[object]]) -> float:
    """Formula 1: sum of per-field entropies over independent fields.

    ``fields`` maps a field name to its observation sequence; fields are
    treated as independent, as the paper's formula does.
    """
    return sum(field_entropy(obs) for obs in fields.values())


def quantize(values: Sequence[float], bins: int = 64) -> List[int]:
    """Bucket continuous observations for entropy estimation.

    Entropy of raw floats is meaninglessly high (every value unique);
    quantizing to ``bins`` buckets over the observed range yields a
    comparable measure across channels.
    """
    if not values:
        return []
    lo = min(values)
    hi = max(values)
    if hi == lo:
        return [0 for _ in values]
    width = (hi - lo) / bins
    return [min(bins - 1, int((v - lo) / width)) for v in values]
