"""ASCII power-timeline rendering for the Figure 2 report layer.

Benchmarks write plain-text reports (``benchmarks/out/``), so the "plot"
is a Unicode sparkline: one glyph per fixed averaging window, glyph
height proportional to the window's mean power within the trace's band.
Windows where the machine was mostly dark — fractional ``downtime``
above the shading threshold, as computed by
:meth:`repro.datacenter.simulation.PowerTrace.averaged` — are shaded
``░`` instead of showing a (meaningless) power level. A *wholly* dark
window has no samples at all; ``averaged()`` reports it as a gap marker
and its fractional-downtime bookkeeping drops out, so the renderers here
work from the source trace and re-bucket its gap markers to tell "down
the whole hour" (shaded) apart from "nothing was scheduled" (blank).
This surfaces crash outages directly in the weekly view instead of
letting the averaging silently interpolate over them.
"""

from __future__ import annotations

from typing import List, Set

from repro.errors import SimulationError

#: glyph ramp for increasing power within the [trough, peak] band
BLOCKS = "▁▂▃▄▅▆▇█"
#: a mostly-dark averaging window (downtime above the threshold)
DOWNTIME_GLYPH = "░"
#: an averaging window with neither samples nor missed samples
EMPTY_GLYPH = " "

#: a window counts as "mostly dark" above this fractional downtime
DEFAULT_SHADE_THRESHOLD = 0.5


def _gap_windows(trace, window_s: float) -> Set[int]:
    """Window indices of ``trace`` that contain missed-sample markers."""
    if not trace.times:
        return set()
    start = trace.times[0]
    return {
        int((g - start) // window_s)
        for g in trace.gaps
        if g >= start
    }


def power_glyphs(
    trace,
    window_s: float,
    shade_threshold: float = DEFAULT_SHADE_THRESHOLD,
) -> List[str]:
    """One glyph per ``window_s`` averaging window of a power trace.

    ``trace`` is the *source* (sampled) trace; it is resampled with
    :meth:`PowerTrace.averaged` internally. Windows with samples render
    a :data:`BLOCKS` ramp glyph — or :data:`DOWNTIME_GLYPH` when their
    fractional downtime exceeds ``shade_threshold``. Sample-less windows
    render :data:`DOWNTIME_GLYPH` if the machine was down (the window
    holds gap markers) and :data:`EMPTY_GLYPH` otherwise.
    """
    if not 0.0 < shade_threshold <= 1.0:
        raise SimulationError(
            f"shade threshold must be in (0, 1]: {shade_threshold}"
        )
    if not len(trace):
        return []
    avg = trace.averaged(window_s)
    dark = _gap_windows(trace, window_s)
    start = avg.times[0] if avg.times else 0.0
    lo = avg.trough if len(avg) else 0.0
    band = (avg.peak - lo) if len(avg) else 0.0
    downtime = avg.downtime
    entries = []
    for i, w in enumerate(avg.watts):
        if i < len(downtime) and downtime[i] > shade_threshold:
            glyph = DOWNTIME_GLYPH
        elif band <= 0:
            glyph = BLOCKS[-1]
        else:
            step = int((w - lo) / band * (len(BLOCKS) - 1) + 0.5)
            glyph = BLOCKS[step]
        entries.append((avg.times[i], 0, glyph))
    # sample-less windows interleave by time; the tiebreak keeps a real
    # sample at the exact timestamp ahead of a marker there
    for t in avg.gaps:
        index = int(round((t - start) / window_s))
        glyph = DOWNTIME_GLYPH if index in dark else EMPTY_GLYPH
        entries.append((t, 1, glyph))
    return [glyph for _, _, glyph in sorted(entries)]


def render_power_timeline(
    trace,
    window_s: float,
    width: int = 72,
    label: str = "power",
    shade_threshold: float = DEFAULT_SHADE_THRESHOLD,
) -> str:
    """Multi-line sparkline report of a power trace.

    The trace is resampled at ``window_s``, rendered as rows of at most
    ``width`` glyphs, and captioned with the band and the downtime
    share. Works on gapped traces; an empty trace renders a one-line
    note.
    """
    if width < 1:
        raise SimulationError(f"width must be >= 1: {width}")
    if not len(trace):
        return f"{label}: (no samples recorded)"
    glyphs = power_glyphs(trace, window_s, shade_threshold=shade_threshold)
    rows = [
        "".join(glyphs[i : i + width]) for i in range(0, len(glyphs), width)
    ]
    avg = trace.averaged(window_s)
    summary = downtime_summary(trace, window_s, shade_threshold)
    caption = (
        f"{label}: {len(glyphs)} x {window_s:.0f}s windows, band "
        f"{avg.trough:.0f}-{avg.peak:.0f} W"
    )
    if summary["downtime_fraction"] > 0.0 or avg.gaps:
        caption += (
            f"  [downtime: {summary['dark_windows']} dark"
            f" ('{DOWNTIME_GLYPH}'), {summary['partial_windows']} partial,"
            f" fraction {summary['downtime_fraction']:.3f}]"
        )
    return "\n".join([caption] + rows)


def downtime_summary(
    trace,
    window_s: float,
    shade_threshold: float = DEFAULT_SHADE_THRESHOLD,
) -> dict:
    """Aggregate downtime statistics over ``window_s`` averaging windows.

    Returns ``windows`` (total rendered windows, sampled plus empty),
    ``dark_windows`` (mostly-dark: fractional downtime above
    ``shade_threshold``, or sample-less with missed-sample markers),
    ``partial_windows`` (some downtime, below the threshold), and
    ``downtime_fraction`` (mean fractional downtime across all windows,
    counting wholly-dark ones as 1.0; exactly 0.0 for a fault-free
    trace).
    """
    if not len(trace):
        return {
            "windows": 0,
            "dark_windows": 0,
            "partial_windows": 0,
            "downtime_fraction": 0.0,
        }
    avg = trace.averaged(window_s)
    dark_indices = _gap_windows(trace, window_s)
    start = avg.times[0] if avg.times else 0.0
    wholly_dark = sum(
        1
        for t in avg.gaps
        if int(round((t - start) / window_s)) in dark_indices
    )
    downtime = avg.downtime
    total = len(avg) + len(avg.gaps)
    return {
        "windows": total,
        "dark_windows": wholly_dark
        + sum(1 for d in downtime if d > shade_threshold),
        "partial_windows": sum(
            1 for d in downtime if 0.0 < d <= shade_threshold
        ),
        "downtime_fraction": (
            (sum(downtime) + wholly_dark) / total if total else 0.0
        ),
    }
