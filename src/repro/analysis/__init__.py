"""Shared numerics: entropy, regression, trace statistics, plotting."""

from repro.analysis.entropy import field_entropy, joint_entropy
from repro.analysis.plotting import (
    downtime_summary,
    power_glyphs,
    render_power_timeline,
)
from repro.analysis.regression import LinearModel, fit_linear
from repro.analysis.traces import correlate, crest_indices, pearson

__all__ = [
    "LinearModel",
    "correlate",
    "crest_indices",
    "downtime_summary",
    "field_entropy",
    "fit_linear",
    "joint_entropy",
    "pearson",
    "power_glyphs",
    "render_power_timeline",
]
