"""Shared numerics: entropy, regression, and trace statistics."""

from repro.analysis.entropy import field_entropy, joint_entropy
from repro.analysis.regression import LinearModel, fit_linear
from repro.analysis.traces import correlate, crest_indices, pearson

__all__ = [
    "LinearModel",
    "correlate",
    "crest_indices",
    "field_entropy",
    "fit_linear",
    "joint_entropy",
    "pearson",
]
