"""Time-series helpers for co-residence trace matching and crest detection.

Two containers verify co-residence by snapshotting a time-varying channel
(e.g. ``MemFree``) simultaneously for a minute and checking whether the
traces match (Section III-C, metric V); the synergistic attacker detects
power crests in a RAPL-derived watt series (Section IV-A).
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.errors import ReproError


def pearson(a: Sequence[float], b: Sequence[float]) -> float:
    """Pearson correlation coefficient of two equal-length series.

    Two constant series are defined as perfectly correlated iff they are
    equal (that is what trace *matching* means for a flat channel).
    """
    if len(a) != len(b):
        raise ReproError(f"trace length mismatch: {len(a)} != {len(b)}")
    if not a:
        raise ReproError("cannot correlate empty traces")
    n = len(a)
    mean_a = sum(a) / n
    mean_b = sum(b) / n
    var_a = sum((x - mean_a) ** 2 for x in a)
    var_b = sum((x - mean_b) ** 2 for x in b)
    if var_a == 0 or var_b == 0:
        return 1.0 if list(a) == list(b) else 0.0
    cov = sum((x - mean_a) * (y - mean_b) for x, y in zip(a, b))
    return cov / math.sqrt(var_a * var_b)


def correlate(a: Sequence[float], b: Sequence[float]) -> float:
    """Trace-match score in [0, 1]: max(0, pearson) on first differences.

    Differencing removes each container's constant offset and makes the
    score reflect co-movement, which is the actual co-residence signal.
    """
    if len(a) < 3:
        raise ReproError("need at least 3 samples to correlate traces")
    da = [y - x for x, y in zip(a, a[1:])]
    db = [y - x for x, y in zip(b, b[1:])]
    return max(0.0, pearson(da, db))


def crest_indices(
    values: Sequence[float], threshold_fraction: float = 0.8
) -> List[int]:
    """Indices where the series is in its top band (candidate crests).

    ``threshold_fraction`` positions the band between the series minimum
    and maximum: 0.8 keeps samples above min + 0.8·(max − min).
    """
    if not values:
        return []
    if not 0.0 < threshold_fraction < 1.0:
        raise ReproError(f"threshold fraction must be in (0,1): {threshold_fraction}")
    lo = min(values)
    hi = max(values)
    if hi == lo:
        return []
    cut = lo + threshold_fraction * (hi - lo)
    return [i for i, v in enumerate(values) if v >= cut]


def moving_average(values: Sequence[float], window: int) -> List[float]:
    """Simple trailing moving average (window clipped at the start)."""
    if window < 1:
        raise ReproError(f"window must be >= 1: {window}")
    out = []
    acc = 0.0
    for i, v in enumerate(values):
        acc += v
        if i >= window:
            acc -= values[i - window]
        out.append(acc / min(i + 1, window))
    return out
