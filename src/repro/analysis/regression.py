"""Least-squares regression used by the defense's power modelling.

The paper fits (a) per-benchmark linear energy-vs-instructions slopes
(Figure 6), (b) a linear DRAM-energy-vs-cache-misses model (Figure 7), and
(c) a multi-degree polynomial F(cache-miss-rate, branch-miss-rate) for the
core slope (Formula 2). All reduce to ordinary least squares, implemented
here over numpy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import DefenseError


@dataclass(frozen=True)
class LinearModel:
    """A fitted linear model y = w·x + b."""

    weights: tuple
    intercept: float
    r_squared: float

    def predict(self, features: Sequence[float]) -> float:
        """Evaluate the model on one feature vector."""
        if len(features) != len(self.weights):
            raise DefenseError(
                f"feature count mismatch: {len(features)} != {len(self.weights)}"
            )
        return float(np.dot(self.weights, features) + self.intercept)


def fit_linear(
    features: Sequence[Sequence[float]], targets: Sequence[float]
) -> LinearModel:
    """Ordinary least squares with intercept.

    Raises :class:`DefenseError` when the system is under-determined
    (fewer samples than unknowns) — the modelling stage must collect more
    training windows instead of silently extrapolating.
    """
    if not features:
        raise DefenseError("cannot fit a model with no samples")
    X = np.asarray(features, dtype=float)
    y = np.asarray(targets, dtype=float)
    if X.ndim != 2 or len(X) != len(y):
        raise DefenseError(f"bad regression shapes: X{X.shape}, y{y.shape}")
    if len(X) < X.shape[1] + 1:
        raise DefenseError(
            f"under-determined fit: {len(X)} samples for {X.shape[1] + 1} unknowns"
        )
    augmented = np.hstack([X, np.ones((len(X), 1))])
    solution, _, _, _ = np.linalg.lstsq(augmented, y, rcond=None)
    weights = tuple(float(w) for w in solution[:-1])
    intercept = float(solution[-1])

    predictions = augmented @ solution
    ss_res = float(np.sum((y - predictions) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return LinearModel(weights=weights, intercept=intercept, r_squared=r_squared)


def polynomial_features(x: float, y: float, degree: int = 2) -> List[float]:
    """Features of the two miss rates for Formula 2's F(·,·).

    Degree 1 → [x, y]; degree 2 adds [x², xy, y²]; degree 3 adds cubics.
    """
    if degree < 1 or degree > 3:
        raise DefenseError(f"unsupported polynomial degree: {degree}")
    feats = [x, y]
    if degree >= 2:
        feats += [x * x, x * y, y * y]
    if degree >= 3:
        feats += [x**3, x * x * y, x * y * y, y**3]
    return feats
