"""ContainerLeaks reproduction.

A comprehensive Python reproduction of "ContainerLeaks: Emerging Security
Threats of Information Leakages in Container Clouds" (Gao, Gu, Kayaalp,
Pendarakis, Wang - IEEE/IFIP DSN 2017): the simulated Linux substrate,
the procfs/sysfs leakage channels, the container runtime and cloud
profiles, the co-residence toolkit, the synergistic power attack, and the
two-stage defense with its power-based namespace.

Start with :mod:`repro.kernel.kernel` (the `Machine` harness) and
:mod:`repro.runtime.engine`, or run ``examples/quickstart.py``.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
