"""Named benchmark profiles: the workloads of the paper's evaluation.

Three families:

- **Power-modelling benchmarks** (Figures 6/7): the idle C loop, Prime95,
  462.libquantum, and ``stress`` memory variants. Their activity vectors
  span the (IPC, cache-miss, branch-miss) space so energy-per-instruction
  differs across them — the distinct slopes of Figure 6.
- **SPEC CPU2006 subset** (Figure 8): held-out workloads for evaluating
  modelling accuracy; no overlap with the modelling set, as in the paper.
- **UnixBench micro-suite** (Table III): twelve tests characterized by the
  OS primitives they stress (context switches, spawns, syscalls, file IO),
  which is what determines their sensitivity to the defense's
  perf-accounting overhead.

Activity parameters are synthetic but ordered like published
characterization data: e.g. mcf/libquantum are the classic LLC-miss
monsters, hmmer/namd are high-IPC compute, gobmk/sjeng are branchy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import SimulationError
from repro.runtime.workload import Workload, constant


@dataclass(frozen=True)
class BenchmarkProfile:
    """Activity characterization of one named benchmark."""

    name: str
    ipc: float
    cache_miss_per_kinst: float
    branch_miss_per_kinst: float
    rss_mb: float = 50.0
    syscalls_per_sec: float = 50.0
    voluntary_switches_per_sec: float = 10.0
    io_ops_per_sec: float = 0.0

    def workload(
        self, duration: Optional[float] = None, cpu_demand: float = 1.0
    ) -> Workload:
        """Instantiate a runnable workload from this profile."""
        return constant(
            self.name,
            cpu_demand=cpu_demand,
            ipc=self.ipc,
            cache_miss_per_kinst=self.cache_miss_per_kinst,
            branch_miss_per_kinst=self.branch_miss_per_kinst,
            rss_mb=self.rss_mb,
            duration=duration,
            syscalls_per_sec=self.syscalls_per_sec,
            voluntary_switches_per_sec=self.voluntary_switches_per_sec,
            io_ops_per_sec=self.io_ops_per_sec,
        )


#: Figure 6/7 modelling set: "the idle loop written in C, prime,
#: 462.libquantum in SPECCPU2006, and stress with different memory
#: configurations".
MODELING_BENCHMARKS: Dict[str, BenchmarkProfile] = {
    "idle-loop": BenchmarkProfile(
        "idle-loop", ipc=3.5, cache_miss_per_kinst=0.01, branch_miss_per_kinst=0.05,
        rss_mb=2.0,
    ),
    "prime": BenchmarkProfile(
        "prime", ipc=2.6, cache_miss_per_kinst=0.1, branch_miss_per_kinst=0.3,
        rss_mb=30.0,
    ),
    "libquantum": BenchmarkProfile(
        "libquantum", ipc=1.2, cache_miss_per_kinst=12.0, branch_miss_per_kinst=1.5,
        rss_mb=100.0,
    ),
    "stress-m1": BenchmarkProfile(
        "stress-m1", ipc=0.6, cache_miss_per_kinst=25.0, branch_miss_per_kinst=2.0,
        rss_mb=256.0,
    ),
    "stress-m4": BenchmarkProfile(
        "stress-m4", ipc=0.5, cache_miss_per_kinst=35.0, branch_miss_per_kinst=2.5,
        rss_mb=1024.0,
    ),
}

#: Figure 8 evaluation set: SPEC CPU2006 workloads runnable in a container,
#: disjoint from the modelling set.
SPEC_BENCHMARKS: Dict[str, BenchmarkProfile] = {
    "401.bzip2": BenchmarkProfile(
        "401.bzip2", ipc=1.6, cache_miss_per_kinst=4.0, branch_miss_per_kinst=4.0,
        rss_mb=850.0,
    ),
    "429.mcf": BenchmarkProfile(
        "429.mcf", ipc=0.5, cache_miss_per_kinst=30.0, branch_miss_per_kinst=3.0,
        rss_mb=1700.0,
    ),
    "445.gobmk": BenchmarkProfile(
        "445.gobmk", ipc=1.3, cache_miss_per_kinst=2.0, branch_miss_per_kinst=8.0,
        rss_mb=30.0,
    ),
    "456.hmmer": BenchmarkProfile(
        "456.hmmer", ipc=2.2, cache_miss_per_kinst=1.0, branch_miss_per_kinst=1.5,
        rss_mb=60.0,
    ),
    "458.sjeng": BenchmarkProfile(
        "458.sjeng", ipc=1.6, cache_miss_per_kinst=1.5, branch_miss_per_kinst=6.0,
        rss_mb=180.0,
    ),
    "433.milc": BenchmarkProfile(
        "433.milc", ipc=1.0, cache_miss_per_kinst=18.0, branch_miss_per_kinst=1.0,
        rss_mb=700.0,
    ),
    "444.namd": BenchmarkProfile(
        "444.namd", ipc=2.3, cache_miss_per_kinst=0.8, branch_miss_per_kinst=1.0,
        rss_mb=50.0,
    ),
    "450.soplex": BenchmarkProfile(
        "450.soplex", ipc=0.9, cache_miss_per_kinst=15.0, branch_miss_per_kinst=2.0,
        rss_mb=440.0,
    ),
    "453.povray": BenchmarkProfile(
        "453.povray", ipc=2.0, cache_miss_per_kinst=0.5, branch_miss_per_kinst=3.0,
        rss_mb=7.0,
    ),
    "471.omnetpp": BenchmarkProfile(
        "471.omnetpp", ipc=0.8, cache_miss_per_kinst=20.0, branch_miss_per_kinst=4.0,
        rss_mb=170.0,
    ),
    "473.astar": BenchmarkProfile(
        "473.astar", ipc=1.1, cache_miss_per_kinst=8.0, branch_miss_per_kinst=5.0,
        rss_mb=330.0,
    ),
    "483.xalancbmk": BenchmarkProfile(
        "483.xalancbmk", ipc=1.1, cache_miss_per_kinst=12.0, branch_miss_per_kinst=6.0,
        rss_mb=430.0,
    ),
}


def power_virus(duration: Optional[float] = None) -> Workload:
    """A SYMPO/MAMPO-style synthetic power virus (Section IV-A).

    Maximizes energy per second: saturated pipeline *and* heavy LLC/DRAM
    traffic — drawing roughly twice a Prime95 core's power.
    """
    return constant(
        "power-virus",
        cpu_demand=1.0,
        ipc=3.0,
        cache_miss_per_kinst=20.0,
        branch_miss_per_kinst=5.0,
        rss_mb=512.0,
        duration=duration,
        syscalls_per_sec=10.0,
        voluntary_switches_per_sec=2.0,
    )


@dataclass(frozen=True)
class UnixBenchTest:
    """One UnixBench micro-benchmark, characterized by primitive costs.

    ``base_ops_per_cpu_sec`` is throughput on an unmodified kernel;
    ``switches_per_op`` / ``spawns_per_op`` determine exposure to the
    defense's toggle and perf-event-setup costs; ``cache_miss_per_kinst``
    exposure to the per-event bookkeeping tax.
    """

    name: str
    base_ops_per_cpu_sec: float
    switches_per_op: float = 0.0
    spawns_per_op: float = 0.0
    syscalls_per_op: float = 0.0
    ipc: float = 2.0
    cache_miss_per_kinst: float = 0.5
    branch_miss_per_kinst: float = 1.0

    def workload(self, duration: Optional[float] = None) -> Workload:
        """A runnable workload approximating one copy of this test."""
        switches = min(200_000.0, self.base_ops_per_cpu_sec * self.switches_per_op)
        syscalls = min(500_000.0, self.base_ops_per_cpu_sec * self.syscalls_per_op)
        return constant(
            self.name,
            cpu_demand=1.0 if self.switches_per_op == 0 else 0.5,
            ipc=self.ipc,
            cache_miss_per_kinst=self.cache_miss_per_kinst,
            branch_miss_per_kinst=self.branch_miss_per_kinst,
            duration=duration,
            syscalls_per_sec=syscalls,
            voluntary_switches_per_sec=switches,
            work_rate=1.0,
        )


#: The twelve UnixBench tests of Table III.
UNIXBENCH_TESTS: Tuple[UnixBenchTest, ...] = (
    UnixBenchTest("Dhrystone 2 using register variables", 4.0e7, ipc=3.2,
                  cache_miss_per_kinst=0.05, branch_miss_per_kinst=0.5),
    UnixBenchTest("Double-Precision Whetstone", 9.0e5, ipc=2.4,
                  cache_miss_per_kinst=0.1, branch_miss_per_kinst=0.3),
    UnixBenchTest("Execl Throughput", 3.0e3, spawns_per_op=1.0,
                  syscalls_per_op=40.0, ipc=1.2, cache_miss_per_kinst=3.0),
    UnixBenchTest("File Copy 1024 bufsize 2000 maxblocks", 9.0e5,
                  syscalls_per_op=0.3, ipc=0.9, cache_miss_per_kinst=18.0),
    UnixBenchTest("File Copy 256 bufsize 500 maxblocks", 5.5e5,
                  syscalls_per_op=0.9, ipc=0.8, cache_miss_per_kinst=22.0),
    UnixBenchTest("File Copy 4096 bufsize 8000 maxblocks", 1.5e6,
                  syscalls_per_op=0.1, ipc=1.0, cache_miss_per_kinst=14.0),
    UnixBenchTest("Pipe Throughput", 1.2e6, syscalls_per_op=2.0, ipc=1.4,
                  cache_miss_per_kinst=1.0),
    UnixBenchTest("Pipe-based Context Switching", 1.6e5, switches_per_op=1.0,
                  syscalls_per_op=2.0, ipc=1.0, cache_miss_per_kinst=1.0),
    UnixBenchTest("Process Creation", 9.0e3, spawns_per_op=1.0,
                  syscalls_per_op=10.0, ipc=1.2, cache_miss_per_kinst=3.0),
    UnixBenchTest("Shell Scripts (1 concurrent)", 2.0e3, spawns_per_op=1.0,
                  syscalls_per_op=200.0, ipc=1.3, cache_miss_per_kinst=2.0),
    UnixBenchTest("Shell Scripts (8 concurrent)", 2.5e2, spawns_per_op=8.0,
                  syscalls_per_op=1600.0, ipc=1.3, cache_miss_per_kinst=2.0),
    UnixBenchTest("System Call Overhead", 4.0e6, syscalls_per_op=1.0,
                  ipc=1.1, cache_miss_per_kinst=0.2),
)


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a profile across the modelling and SPEC sets."""
    profile = MODELING_BENCHMARKS.get(name) or SPEC_BENCHMARKS.get(name)
    if profile is None:
        raise SimulationError(f"unknown benchmark: {name}")
    return profile
