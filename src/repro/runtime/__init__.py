"""Container runtime: containers, the engine, workloads, and the cloud.

This package plays the role Docker/LXC play in the paper: it assembles
namespaces, cgroups, pseudo-filesystem mounts, and masking policies into
containers, binds workloads to them, and — at the top — models multi-tenant
container cloud providers (the CC1-CC5 profiles of Table I).
"""

from repro.runtime.container import Container
from repro.runtime.engine import ContainerEngine
from repro.runtime.policy import MaskingPolicy, docker_default_policy
from repro.runtime.workload import ActivitySample, Workload, WorkloadPhase

__all__ = [
    "ActivitySample",
    "Container",
    "ContainerEngine",
    "MaskingPolicy",
    "Workload",
    "WorkloadPhase",
    "docker_default_policy",
]
