"""Workloads: phase-structured activity generators.

A workload describes *what a process does to the hardware* as a sequence of
phases, each characterized by an activity vector — CPU demand, instructions
per cycle, cache/branch miss rates, memory footprint, syscall and
context-switch rates. Given the CPU time the scheduler grants in a tick,
the phase deterministically yields retired instructions, cache misses,
branch misses, etc.

This is the level of abstraction the paper's power model operates at
(Formula 2 consumes exactly these counters), so an opcode-accurate CPU
model would add nothing to the reproduction while costing orders of
magnitude in simulation speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import SimulationError
from repro.kernel.activity import ActivitySample


@dataclass(frozen=True)
class WorkloadPhase:
    """One phase of a workload.

    Parameters
    ----------
    duration:
        Phase length in seconds; ``None`` means "runs until the workload is
        stopped externally".
    cpu_demand:
        Fraction of one core the task tries to consume (0..1).
    ipc:
        Retired instructions per busy cycle.
    cache_miss_per_kinst / branch_miss_per_kinst:
        LLC misses / branch mispredictions per 1000 retired instructions.
        These two rates are what make energy-per-instruction differ across
        benchmarks (the distinct slopes of Figure 6).
    rss_mb:
        Resident set size while the phase runs.
    syscalls_per_sec / voluntary_switches_per_sec:
        OS-interaction rates (drive Table III's overhead mechanisms).
    net_kbps / io_ops_per_sec:
        Network and block-IO activity (drive interrupt/softirq counters).
    work_rate:
        Benchmark work units completed per second of *useful* CPU time.
    """

    duration: Optional[float] = None
    cpu_demand: float = 1.0
    ipc: float = 1.5
    cache_miss_per_kinst: float = 1.0
    branch_miss_per_kinst: float = 1.0
    rss_mb: float = 10.0
    syscalls_per_sec: float = 100.0
    voluntary_switches_per_sec: float = 10.0
    net_kbps: float = 0.0
    io_ops_per_sec: float = 0.0
    work_rate: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.cpu_demand <= 1.0:
            raise SimulationError(f"cpu_demand must be in [0,1]: {self.cpu_demand}")
        if self.ipc <= 0:
            raise SimulationError(f"ipc must be positive: {self.ipc}")
        if self.cache_miss_per_kinst < 0 or self.branch_miss_per_kinst < 0:
            raise SimulationError("miss rates cannot be negative")
        if self.duration is not None and self.duration <= 0:
            raise SimulationError(f"phase duration must be positive: {self.duration}")


class Workload:
    """A stateful sequence of phases attached to one task.

    The scheduler calls :meth:`demand` to learn how much CPU the task wants
    this tick, then :meth:`consume` with the CPU time actually granted.
    """

    def __init__(self, phases: Sequence[WorkloadPhase], name: str = "workload"):
        if not phases:
            raise SimulationError("workload needs at least one phase")
        self.name = name
        self.phases: List[WorkloadPhase] = list(phases)
        self._index = 0
        self._elapsed_in_phase = 0.0
        self.finished = False
        self.total: ActivitySample = ActivitySample()

    @property
    def current_phase(self) -> Optional[WorkloadPhase]:
        """The active phase, or None once the workload has finished."""
        if self.finished:
            return None
        return self.phases[self._index]

    def demand(self) -> float:
        """CPU demand (cores, 0..1) for the current tick."""
        phase = self.current_phase
        return 0.0 if phase is None else phase.cpu_demand

    def consume(self, cpu_seconds: float, dt: float, frequency_hz: float) -> ActivitySample:
        """Convert granted CPU time into hardware activity and advance.

        ``cpu_seconds`` is the busy time the scheduler granted within the
        ``dt``-second tick; phase progression follows wall (virtual) time,
        not CPU time, as real phases do.
        """
        if cpu_seconds < 0 or dt <= 0:
            raise SimulationError(
                f"bad consume arguments: cpu_seconds={cpu_seconds} dt={dt}"
            )
        if cpu_seconds > dt * 1.000001:
            raise SimulationError(
                f"granted {cpu_seconds}s of CPU in a {dt}s tick"
            )
        phase = self.current_phase
        if phase is None:
            return ActivitySample()

        cycles = int(cpu_seconds * frequency_hz)
        instructions = int(cycles * phase.ipc)
        sample = ActivitySample(
            cpu_ns=int(cpu_seconds * 1e9),
            cycles=cycles,
            instructions=instructions,
            cache_misses=int(instructions * phase.cache_miss_per_kinst / 1000.0),
            branch_misses=int(instructions * phase.branch_miss_per_kinst / 1000.0),
            syscalls=int(phase.syscalls_per_sec * dt),
            voluntary_switches=int(phase.voluntary_switches_per_sec * dt),
            rss_bytes=int(phase.rss_mb * 1024 * 1024),
            net_bytes=int(phase.net_kbps * 1024 / 8 * dt),
            io_ops=int(phase.io_ops_per_sec * dt),
            work_units=phase.work_rate * cpu_seconds,
        )
        self.total = self.total + sample

        self._elapsed_in_phase += dt
        if phase.duration is not None and self._elapsed_in_phase >= phase.duration:
            self._elapsed_in_phase = 0.0
            self._index += 1
            if self._index >= len(self.phases):
                self.finished = True
        return sample

    def seconds_to_phase_boundary(self) -> Optional[float]:
        """Virtual seconds until the current phase ends.

        ``None`` when the workload is finished or its current phase is
        unbounded — i.e. when the workload contributes no event horizon
        and a tick-coalescing driver may skip arbitrarily far as far as
        this workload is concerned. A boundary exactly due returns 0.0.
        """
        phase = self.current_phase
        if phase is None or phase.duration is None:
            return None
        return max(0.0, phase.duration - self._elapsed_in_phase)

    def stop(self) -> None:
        """Terminate the workload regardless of remaining phases."""
        self.finished = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else f"phase {self._index}/{len(self.phases)}"
        return f"Workload({self.name!r}, {state})"


def constant(
    name: str,
    *,
    cpu_demand: float = 1.0,
    ipc: float = 1.5,
    cache_miss_per_kinst: float = 1.0,
    branch_miss_per_kinst: float = 1.0,
    rss_mb: float = 10.0,
    duration: Optional[float] = None,
    syscalls_per_sec: float = 100.0,
    voluntary_switches_per_sec: float = 10.0,
    net_kbps: float = 0.0,
    io_ops_per_sec: float = 0.0,
    work_rate: float = 1.0,
) -> Workload:
    """A single-phase workload (the common case in experiments)."""
    phase = WorkloadPhase(
        duration=duration,
        cpu_demand=cpu_demand,
        ipc=ipc,
        cache_miss_per_kinst=cache_miss_per_kinst,
        branch_miss_per_kinst=branch_miss_per_kinst,
        rss_mb=rss_mb,
        syscalls_per_sec=syscalls_per_sec,
        voluntary_switches_per_sec=voluntary_switches_per_sec,
        net_kbps=net_kbps,
        io_ops_per_sec=io_ops_per_sec,
        work_rate=work_rate,
    )
    return Workload([phase], name=name)


def idle(duration: Optional[float] = None) -> Workload:
    """A workload that consumes (almost) nothing — a sleeping process."""
    return constant(
        "idle",
        cpu_demand=0.001,
        ipc=0.5,
        cache_miss_per_kinst=0.1,
        branch_miss_per_kinst=0.1,
        rss_mb=2.0,
        duration=duration,
        syscalls_per_sec=5.0,
        voluntary_switches_per_sec=2.0,
    )
