"""Masking policies: the access-control layer in front of pseudo-files.

This models what container runtimes and cloud providers actually deploy
(AppArmor profiles, read-only/unreadable mount masks, seccomp): per-path
rules that allow, deny (EACCES), hide (ENOENT), or substitute a partial
view. The stage-1 defense of Section V-A is "generate a policy that denies
every discovered channel"; the CC1–CC5 provider profiles of Table I differ
precisely in which rules they ship.
"""

from __future__ import annotations

import enum
import fnmatch
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import ContainerError
from repro.procfs.node import PseudoFile, ReadContext

#: transforms take (rendered_text, read_context) and return the masked text
Transform = Callable[[str, ReadContext], str]


class Action(enum.Enum):
    """What a matching rule does to the read."""

    ALLOW = "allow"
    DENY = "deny"  # EACCES, like an AppArmor deny rule
    HIDE = "hide"  # ENOENT, like an unreadable mount mask
    PARTIAL = "partial"  # provider-customized restricted view


@dataclass(frozen=True)
class Rule:
    """One policy rule: glob pattern + action (+ transform for PARTIAL)."""

    pattern: str
    action: Action
    transform: Optional[Transform] = None

    def __post_init__(self) -> None:
        if self.action is Action.PARTIAL and self.transform is None:
            raise ContainerError(f"PARTIAL rule needs a transform: {self.pattern}")

    def matches(self, path: str) -> bool:
        """Glob match against the absolute pseudo path."""
        return fnmatch.fnmatchcase(path, self.pattern)


@dataclass(frozen=True)
class Decision:
    """The policy's verdict for one read."""

    action: Action
    transform: Optional[Transform] = None

    @property
    def denied(self) -> bool:
        return self.action is Action.DENY

    @property
    def hidden(self) -> bool:
        return self.action is Action.HIDE


_ALLOW = Decision(action=Action.ALLOW)


@dataclass
class MaskingPolicy:
    """An ordered rule list; first match wins, default allow."""

    name: str = "default"
    rules: List[Rule] = field(default_factory=list)

    def deny(self, pattern: str) -> "MaskingPolicy":
        """Append a DENY rule (chainable)."""
        self.rules.append(Rule(pattern=pattern, action=Action.DENY))
        return self

    def hide(self, pattern: str) -> "MaskingPolicy":
        """Append a HIDE rule (chainable)."""
        self.rules.append(Rule(pattern=pattern, action=Action.HIDE))
        return self

    def allow(self, pattern: str) -> "MaskingPolicy":
        """Append an explicit ALLOW (exception before a broader deny)."""
        self.rules.append(Rule(pattern=pattern, action=Action.ALLOW))
        return self

    def partial(self, pattern: str, transform: Transform) -> "MaskingPolicy":
        """Append a PARTIAL rule with the given view transform."""
        self.rules.append(
            Rule(pattern=pattern, action=Action.PARTIAL, transform=transform)
        )
        return self

    def check(self, path: str, node: PseudoFile) -> Decision:
        """Evaluate the rules for one path (first match wins)."""
        for rule in self.rules:
            if rule.matches(path):
                if rule.action is Action.PARTIAL:
                    return Decision(action=rule.action, transform=rule.transform)
                return Decision(action=rule.action)
        return _ALLOW

    def copy(self, name: Optional[str] = None) -> "MaskingPolicy":
        """An independent copy (providers derive per-container policies)."""
        return MaskingPolicy(name=name or self.name, rules=list(self.rules))


def docker_default_policy() -> MaskingPolicy:
    """The out-of-the-box Docker masking of the paper's era.

    Docker masked a handful of paths (``/proc/kcore``, ``/proc/timer_stats``
    etc.) but *none* of the channels in Table I — that is the paper's
    point. We model the default as an empty rule set over the files we
    simulate, with the historical masks listed for documentation value.
    """
    policy = MaskingPolicy(name="docker-default")
    for masked in ("/proc/kcore", "/proc/timer_stats", "/proc/sched_debug_disabled"):
        policy.hide(masked)
    return policy


def first_field_only(text: str, ctx: ReadContext) -> str:
    """A PARTIAL transform: keep only each line's first token.

    Used by CC5-style providers that strip per-CPU detail but leave
    aggregate fields — "partially leaks" (the half-filled cells of
    Table I).
    """
    lines = []
    for line in text.splitlines():
        fields = line.split()
        if fields:
            lines.append(fields[0])
    return "\n".join(lines) + "\n"
