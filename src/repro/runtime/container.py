"""The container object: namespaces + cgroups + mounts + policy.

A :class:`Container` is what ``docker run`` produces: a bundle of fresh
namespaces, one cgroup per controller, a read-only view of the host's
pseudo-filesystems filtered by a masking policy, and a process tree rooted
at an init task. Tenants interact with it like they would over
``docker exec``: run workloads, read pseudo-files, arm timers, take locks.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, TYPE_CHECKING

from repro.errors import ContainerError
from repro.kernel.cgroups import Cgroup
from repro.kernel.namespaces import Namespace, NamespaceType
from repro.kernel.process import Task, TaskState
from repro.kernel.timers import TimerEntry
from repro.kernel.locks import LockEntry
from repro.procfs.node import ReadContext
from repro.runtime.policy import MaskingPolicy
from repro.runtime.workload import Workload, idle as idle_workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.engine import ContainerEngine


class Container:
    """One running container. Construct via :class:`ContainerEngine`."""

    def __init__(
        self,
        engine: "ContainerEngine",
        container_id: str,
        name: str,
        namespaces: Dict[NamespaceType, Namespace],
        cgroup_set: Dict[str, Cgroup],
        policy: MaskingPolicy,
        cpus: Optional[FrozenSet[int]] = None,
    ):
        self.engine = engine
        self.container_id = container_id
        self.name = name
        self.namespaces = namespaces
        self.cgroup_set = cgroup_set
        self.policy = policy
        self.cpus = cpus
        self.tasks: List[Task] = []
        self.running = True
        self.init_task: Optional[Task] = None

    # ------------------------------------------------------------------

    @property
    def kernel(self):
        """The host kernel this container runs on."""
        return self.engine.kernel

    def _require_running(self) -> None:
        if not self.running:
            raise ContainerError(f"container not running: {self.name}")

    def start_init(self) -> Task:
        """Spawn the init process (pid 1 inside the PID namespace)."""
        self._require_running()
        if self.init_task is not None:
            raise ContainerError(f"init already started: {self.name}")
        self.init_task = self.exec("sh", workload=idle_workload())
        return self.init_task

    def exec(
        self,
        name: str,
        workload: Optional[Workload] = None,
        affinity: Optional[FrozenSet[int]] = None,
    ) -> Task:
        """Run a process inside the container (``docker exec``).

        ``affinity`` models in-container ``taskset``: it can only narrow
        the container's cpuset, never escape it.
        """
        self.engine.touch_fidelity()
        self._require_running()
        if affinity is not None and self.cpus is not None:
            affinity = frozenset(affinity) & self.cpus
            if not affinity:
                raise ContainerError(
                    f"affinity outside the container cpuset: {self.name}"
                )
        task = self.kernel.spawn(
            name,
            namespaces=self.namespaces,
            workload=workload,
            affinity=affinity,
            cgroup_set=self.cgroup_set,
        )
        self.tasks.append(task)
        return task

    def kill_task(self, task: Task) -> None:
        """Terminate one process of this container."""
        self.engine.touch_fidelity()
        if task not in self.tasks:
            raise ContainerError(f"task {task} not in container {self.name}")
        self.tasks.remove(task)
        self.kernel.kill(task)

    def reap_finished(self) -> int:
        """Remove tasks whose workloads completed; returns count reaped."""
        finished = [
            t
            for t in self.tasks
            if t is not self.init_task
            and t.workload is not None
            and t.workload.finished
        ]
        for task in finished:
            self.kill_task(task)
        return len(finished)

    # ------------------------------------------------------------------
    # tenant-visible operations

    def read_context(self) -> ReadContext:
        """A read context representing a process inside this container.

        Reading any pseudo-file demands per-object fidelity (procfs
        renders from live kernel state), so this seam materializes a
        cold columnar host before the read context escapes.
        """
        self.engine.touch_fidelity()
        self._require_running()
        task = self.init_task if self.init_task is not None else None
        return ReadContext(kernel=self.kernel, task=task, container=self)

    def read(self, path: str) -> str:
        """Read a pseudo-file from inside the container.

        Raises :class:`repro.errors.PermissionDeniedError` or
        :class:`repro.errors.FileNotFoundPseudoError` when the masking
        policy (or missing hardware) blocks the path — the same errnos a
        real tenant's ``cat`` would see.
        """
        return self.engine.vfs.read(path, self.read_context())

    def list_pseudo_files(self) -> List[str]:
        """All pseudo paths visible from inside (the detector's walk)."""
        return list(self.engine.vfs.walk_visible(self.read_context()))

    def arm_timer(
        self, task_name: str, delay_seconds: float = 3600.0
    ) -> TimerEntry:
        """Start a process with a crafted name and arm a timer it owns.

        The paper's implantation primitive: the (name, pid) pair becomes
        visible in the *host-global* ``/proc/timer_list``.
        """
        task = self.exec(task_name, workload=idle_workload())
        return self.kernel.timers.arm(task, delay_seconds)

    def take_lock(self, inode: int, task_name: str = "flocker") -> LockEntry:
        """Take a file lock visible in the host-global ``/proc/locks``."""
        task = self.exec(task_name, workload=idle_workload())
        return self.kernel.locks.acquire(task, inode=inode)

    def set_net_prio(self, ifname: str, prio: int) -> None:
        """Write this container's net_prio map (cgroup-side, no leak)."""
        state = self.cgroup_set["net_prio"].state
        state.set_prio(ifname, prio)

    # ------------------------------------------------------------------

    @property
    def cpu_usage_ns(self) -> int:
        """Accumulated CPU time of the container (cpuacct).

        Billing reads live cgroup accounting, so a cold columnar host
        must replay its deferred ticks before answering.
        """
        self.engine.touch_fidelity()
        return self.cgroup_set["cpuacct"].state.usage_ns

    def stop(self) -> None:
        """Stop all processes; the engine removes the container."""
        for task in list(self.tasks):
            self.tasks.remove(task)
            if task.state is not TaskState.DEAD:
                self.kernel.kill(task)
        self.running = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self.running else "stopped"
        return f"Container({self.name!r}, {state}, tasks={len(self.tasks)})"
