"""The container engine: Docker/LXC for the simulated kernel.

Creates containers by assembling fresh namespaces (all seven vanilla
types), a per-container cgroup under every controller (``/docker/<id>``),
a cpuset allocation, the pseudo-filesystem mounts, and the masking policy.
If the kernel supports the POWER namespace type (i.e. the defense is
installed), new containers automatically receive one — mirroring how an
upgraded kernel transparently namespaces new workloads.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Optional

from repro.errors import ContainerError
from repro.kernel.cgroups import CpusetState
from repro.kernel.kernel import Kernel
from repro.kernel.namespaces import Namespace, NamespaceType
from repro.procfs.vfs import PseudoVFS
from repro.runtime.container import Container
from repro.runtime.policy import MaskingPolicy, docker_default_policy


class ContainerEngine:
    """Container lifecycle management on one host."""

    def __init__(self, kernel: Kernel, vfs: Optional[PseudoVFS] = None):
        self.kernel = kernel
        self.vfs = vfs or PseudoVFS(kernel)
        self._ids = itertools.count(1)
        self.containers: Dict[str, Container] = {}
        #: cores handed to dedicated-cpuset containers
        self._allocated_cores: Dict[int, str] = {}
        #: called with each newly created container (power-ns auto-adopt)
        self.container_created_listeners: List = []
        #: columnar host engine + this host's index in it (plain attrs so
        #: the pair pickles with the fleet); ``None`` outside hosts="columnar"
        self.host_engine = None
        self.host_index = -1

    # ------------------------------------------------------------------

    def touch_fidelity(self) -> None:
        """Materialize this host if it is currently a cold column.

        Called on every per-object interaction seam — container create /
        exec / kill / pseudo-file read — so anything that needs
        per-object fidelity sees a fully caught-up kernel.
        """
        if self.host_engine is not None:
            self.host_engine.ensure_hot(self.host_index)

    def _allocate_cores(self, count: int, container_id: str) -> FrozenSet[int]:
        free = [
            c
            for c in range(self.kernel.config.total_cores)
            if c not in self._allocated_cores
        ]
        if len(free) < count:
            raise ContainerError(
                f"not enough free cores: want {count}, have {len(free)}"
            )
        chosen = frozenset(free[:count])
        for core in chosen:
            self._allocated_cores[core] = container_id
        return chosen

    def create(
        self,
        name: Optional[str] = None,
        policy: Optional[MaskingPolicy] = None,
        cpus: Optional[int] = None,
        memory_mb: Optional[int] = None,
        start_init: bool = True,
    ) -> Container:
        """``docker run``: build and start a container.

        ``cpus`` requests a dedicated cpuset of that many cores (how the
        paper's cloud hands each instance "four allocated cores");
        ``None`` shares all host CPUs.
        """
        self.touch_fidelity()
        seq = next(self._ids)
        container_id = f"c{seq:04d}"
        if name is None:
            name = container_id
        if name in self.containers:
            raise ContainerError(f"container name in use: {name}")

        registry = self.kernel.namespaces
        namespaces: Dict[NamespaceType, Namespace] = {}
        for ns_type in registry.supported_types:
            if ns_type is NamespaceType.USER:
                # Docker of the paper's era did not enable user namespaces
                # by default; keep the root USER namespace for fidelity.
                namespaces[ns_type] = registry.root(ns_type)
            else:
                namespaces[ns_type] = registry.create(ns_type)

        namespaces[NamespaceType.UTS].payload["hostname"] = container_id
        namespaces[NamespaceType.CGROUP].payload["root_path"] = f"/docker/{container_id}"
        self.kernel.netdev.register_namespace(namespaces[NamespaceType.NET])

        cgroup_set = self.kernel.cgroups.create_group_set(f"docker/{container_id}")
        allocated = None
        if cpus is not None:
            allocated = self._allocate_cores(cpus, container_id)
            cpuset_state = cgroup_set["cpuset"].state
            assert isinstance(cpuset_state, CpusetState)
            cpuset_state.cpus = allocated
        if memory_mb is not None:
            cgroup_set["memory"].state.limit_bytes = memory_mb * 1024 * 1024

        container = Container(
            engine=self,
            container_id=container_id,
            name=name,
            namespaces=namespaces,
            cgroup_set=cgroup_set,
            policy=policy.copy() if policy is not None else docker_default_policy(),
            cpus=allocated,
        )
        self.containers[name] = container
        if start_init:
            container.start_init()
        for listener in self.container_created_listeners:
            listener(container)
        return container

    def remove(self, container: Container) -> None:
        """``docker rm -f``: stop and deregister a container."""
        if container.name not in self.containers:
            raise ContainerError(f"unknown container: {container.name}")
        self.touch_fidelity()
        container.stop()
        del self.containers[container.name]
        for core, owner in list(self._allocated_cores.items()):
            if owner == container.container_id:
                del self._allocated_cores[core]
        if self.host_engine is not None:
            # the per-object reason for staying hot may just have left
            self.host_engine.maybe_demote(self.host_index)

    def get(self, name: str) -> Container:
        """Look up a running container by name."""
        try:
            return self.containers[name]
        except KeyError:
            raise ContainerError(f"unknown container: {name}")

    def list(self) -> List[Container]:
        """All running containers (``docker ps``)."""
        return list(self.containers.values())

    @property
    def free_cores(self) -> int:
        """Cores not allocated to any dedicated-cpuset container."""
        return self.kernel.config.total_cores - len(self._allocated_cores)
