"""Multi-tenancy container cloud services: the CC1–CC5 of Table I.

A :class:`ContainerCloud` is a fleet of hosts sharing one virtual clock,
an opaque placement policy (tenants cannot choose servers — the premise of
the co-residence game), utilization-based billing (the cost model behind
Section IV-B), and a provider profile combining hardware generation with a
pseudo-file masking policy.

The five provider profiles encode Table I's observations: most clouds of
the era masked almost nothing (CC1/CC2 hide only ``sched_debug``, which
many distributions compiled out), one masked the sysctl fs files, one ran
hardware without RAPL/DTS, and one (CC5) shipped customized partial views
of the CPU/memory files.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import CapacityError, CloudError
from repro.kernel.config import AMD_OPTERON, INTEL_XEON_CLOUD, CpuSpec, HostConfig
from repro.kernel.kernel import Kernel
from repro.kernel.perf import PerfTuning
from repro.procfs.node import ReadContext
from repro.runtime.container import Container
from repro.runtime.engine import ContainerEngine
from repro.runtime.policy import MaskingPolicy, docker_default_policy
from repro.sim.clock import VirtualClock
from repro.sim.rng import DeterministicRNG


# ----------------------------------------------------------------------
# provider profiles


def _cc5_cpuinfo_transform(text: str, ctx: ReadContext) -> str:
    """CC5's customized ``/proc/cpuinfo``: only the tenant's cores."""
    limit = 1
    if ctx.container is not None and ctx.container.cpus is not None:
        limit = len(ctx.container.cpus)
    blocks = text.strip().split("\n\n")
    kept = blocks[:limit]
    renumbered = [
        re.sub(r"processor\t: \d+", f"processor\t: {i}", block)
        for i, block in enumerate(kept)
    ]
    return "\n\n".join(renumbered) + "\n"


def _cc5_meminfo_transform(text: str, ctx: ReadContext) -> str:
    """CC5's ``/proc/meminfo``: scaled to the tenant's memory limit.

    The provider rewrites MemTotal/MemFree to the cgroup limit — but the
    *fluctuation pattern* of the scaled MemFree still follows the host
    (the "partially leaks" the paper warns advanced attackers can use).
    """
    limit = None
    if ctx.container is not None:
        limit = ctx.container.cgroup_set["memory"].state.limit_bytes
    if limit is None:
        limit = 4 * 1024 * 1024 * 1024
    limit_kb = limit // 1024
    total_kb = ctx.kernel.memory.mem_total_kb
    scale = limit_kb / total_kb if total_kb else 1.0
    out = []
    for line in text.splitlines():
        match = re.match(r"^(\w+):\s+(\d+) kB$", line)
        if match:
            out.append(f"{match.group(1)}:{int(int(match.group(2)) * scale):>15} kB")
        else:
            out.append(line)
    return "\n".join(out) + "\n"


def _cc5_stat_transform(text: str, ctx: ReadContext) -> str:
    """CC5's ``/proc/stat``: only the tenant's CPU rows, no host totals."""
    cores = ctx.container.cpus if ctx.container is not None else None
    keep = {f"cpu{c}" for c in cores} if cores else {"cpu0"}
    out = []
    for line in text.splitlines():
        head = line.split(" ", 1)[0]
        if head == "cpu" or head in ("intr", "softirq"):
            continue
        if head.startswith("cpu") and head not in keep:
            continue
        out.append(line)
    return "\n".join(out) + "\n"


@dataclass(frozen=True)
class ProviderProfile:
    """One commercial container cloud service's configuration."""

    name: str
    description: str
    host_config: HostConfig
    policy_factory: Callable[[], MaskingPolicy]
    servers: int = 8
    #: cores handed to each instance (the paper's CC1 gave four)
    cores_per_instance: int = 4
    memory_mb_per_instance: int = 4096
    #: $/vCPU-hour for utilization-based billing
    price_per_cpu_hour: float = 0.05


def _policy_cc1() -> MaskingPolicy:
    policy = docker_default_policy()
    policy.name = "CC1"
    policy.deny("/proc/sched_debug")
    return policy


def _policy_cc2() -> MaskingPolicy:
    policy = docker_default_policy()
    policy.name = "CC2"
    policy.deny("/proc/sched_debug")
    return policy


def _policy_cc3() -> MaskingPolicy:
    policy = docker_default_policy()
    policy.name = "CC3"
    policy.deny("/proc/sys/fs/*")
    policy.deny("/sys/fs/cgroup/net_prio/*")
    return policy


def _policy_cc4() -> MaskingPolicy:
    policy = docker_default_policy()
    policy.name = "CC4"
    policy.deny("/proc/sched_debug")
    policy.deny("/proc/timer_list")
    policy.deny("/sys/fs/cgroup/net_prio/*")
    policy.deny("/sys/devices/*")
    policy.deny("/sys/class/*")
    return policy


def _policy_cc5() -> MaskingPolicy:
    policy = docker_default_policy()
    policy.name = "CC5"
    policy.deny("/proc/locks")
    policy.deny("/proc/zoneinfo")
    policy.deny("/proc/uptime")
    policy.deny("/proc/schedstat")
    policy.deny("/proc/loadavg")
    policy.partial("/proc/stat", _cc5_stat_transform)
    policy.partial("/proc/meminfo", _cc5_meminfo_transform)
    policy.partial("/proc/cpuinfo", _cc5_cpuinfo_transform)
    policy.deny("/sys/fs/cgroup/net_prio/*")
    policy.deny("/sys/devices/*")
    policy.deny("/sys/class/*")
    return policy


PROVIDER_PROFILES: Dict[str, ProviderProfile] = {
    "CC1": ProviderProfile(
        name="CC1",
        description="bare-metal Docker cloud, default masking only",
        host_config=HostConfig(hostname="cc1-host", cpu=INTEL_XEON_CLOUD),
        policy_factory=_policy_cc1,
    ),
    "CC2": ProviderProfile(
        name="CC2",
        description="Docker-on-VM cloud, default masking only",
        host_config=HostConfig(hostname="cc2-host", cpu=INTEL_XEON_CLOUD),
        policy_factory=_policy_cc2,
    ),
    "CC3": ProviderProfile(
        name="CC3",
        description="masks sysctl fs files and net_prio",
        host_config=HostConfig(hostname="cc3-host", cpu=INTEL_XEON_CLOUD),
        policy_factory=_policy_cc3,
    ),
    "CC4": ProviderProfile(
        name="CC4",
        description="AMD hardware (no RAPL/DTS) plus sysfs masking",
        host_config=HostConfig(
            hostname="cc4-host",
            cpu=CpuSpec(
                model_name=AMD_OPTERON.model_name,
                vendor_id=AMD_OPTERON.vendor_id,
                cpu_family=AMD_OPTERON.cpu_family,
                model=AMD_OPTERON.model,
                stepping=AMD_OPTERON.stepping,
                frequency_mhz=AMD_OPTERON.frequency_mhz,
                cores=16,
                cache_size_kb=AMD_OPTERON.cache_size_kb,
                supports_rapl=False,
                supports_dts=False,
            ),
        ),
        policy_factory=_policy_cc4,
    ),
    "CC5": ProviderProfile(
        name="CC5",
        description="customized partial views of CPU/memory files",
        host_config=HostConfig(hostname="cc5-host", cpu=INTEL_XEON_CLOUD),
        policy_factory=_policy_cc5,
    ),
}


# ----------------------------------------------------------------------
# the cloud


@dataclass
class Instance:
    """A tenant's handle to one launched container instance."""

    instance_id: str
    tenant: str
    container: Container
    host_index: int
    launched_at: float
    #: cpuacct reading at launch, for billing deltas
    _cpu_ns_at_launch: int = 0
    terminated: bool = False

    def read(self, path: str) -> str:
        """Read a pseudo-file from inside the instance."""
        if self.terminated:
            raise CloudError(f"instance terminated: {self.instance_id}")
        return self.container.read(path)

    @property
    def billed_cpu_seconds(self) -> float:
        """CPU time consumed since launch (the billing meter)."""
        return (self.container.cpu_usage_ns - self._cpu_ns_at_launch) / 1e9


class CloudHost:
    """One physical server of the cloud."""

    def __init__(self, kernel: Kernel, engine: ContainerEngine, index: int):
        self.kernel = kernel
        self.engine = engine
        self.index = index


def build_cloud_host(
    profile: ProviderProfile,
    clock: "VirtualClock",
    rng: DeterministicRNG,
    index: int,
) -> CloudHost:
    """Construct server ``index`` of a fleet seeded by ``rng``.

    Every stream the host consumes is derived from ``rng`` by *name*
    (``{profile}-host-{index}``), never by draw order, so the rack-sharded
    parallel engine can rebuild any subset of the fleet in a worker
    process and get kernels bit-identical to the serial fleet's — this is
    the single construction path both use.
    """
    # fork under the provider name too: two different providers
    # seeded alike are still different physical fleets
    host_rng = rng.fork(f"{profile.name}-host-{index}")
    config = HostConfig(
        hostname=f"{profile.host_config.hostname}-{index}",
        cpu=profile.host_config.cpu,
        packages=profile.host_config.packages,
        memory_mb=profile.host_config.memory_mb,
        numa_nodes=profile.host_config.numa_nodes,
        disks=profile.host_config.disks,
        net_interfaces=profile.host_config.net_interfaces,
        kernel_version=profile.host_config.kernel_version,
        power=profile.host_config.power,
    )
    # Stagger boots: servers of one rack are installed in one
    # maintenance window but not at the same instant (the
    # /proc/uptime proximity signal of Section IV-C).
    boot_skew = host_rng.uniform("boot-skew", 0.0, 120.0)
    kernel = Kernel(config=config, clock=clock, rng=host_rng)
    kernel.boot_time = clock.now - boot_skew
    engine = ContainerEngine(kernel)
    return CloudHost(kernel=kernel, engine=engine, index=index)


class ContainerCloud:
    """A multi-tenant container cloud service."""

    def __init__(
        self,
        profile: ProviderProfile,
        seed: int = 0,
        servers: Optional[int] = None,
        start_time: float = 0.0,
        perf_tuning: PerfTuning = PerfTuning(),
    ):
        self.profile = profile
        self.clock = VirtualClock(start=start_time)
        self.rng = DeterministicRNG(seed=seed)
        self.hosts: List[CloudHost] = []
        nservers = servers if servers is not None else profile.servers
        if nservers < 1:
            raise CloudError(f"cloud needs at least one server: {nservers}")
        for i in range(nservers):
            self.hosts.append(build_cloud_host(profile, self.clock, self.rng, i))
        self._instances: Dict[str, Instance] = {}
        self._counter = 0
        #: full launch/terminate history, in order — the rack-sharded
        #: parallel engine replays it inside shard workers so container
        #: ids, core allocations and kernel state match the serial cloud
        self.launch_log: List[tuple] = []
        #: set by the parallel engine once shard workers own the hosts;
        #: any further launch/terminate would silently diverge from them
        self.frozen_reason: Optional[str] = None

    # ------------------------------------------------------------------

    def freeze(self, reason: str) -> None:
        """Reject further launches/terminations (parallel workers own hosts)."""
        self.frozen_reason = reason

    def launch_instance(self, tenant: str, cpus: Optional[int] = None) -> Instance:
        """Launch an instance for ``tenant`` on a provider-chosen server.

        Placement is random among servers with spare capacity — the tenant
        has no influence, which is what forces the paper's
        launch-check-terminate co-residence strategy.
        """
        if self.frozen_reason is not None:
            raise CloudError(f"cloud is frozen: {self.frozen_reason}")
        want = cpus if cpus is not None else self.profile.cores_per_instance
        candidates = [h for h in self.hosts if h.engine.free_cores >= want]
        if not candidates:
            raise CapacityError(f"no server has {want} free cores")
        host = self.rng.stream("placement").choice(candidates)
        self._counter += 1
        instance_id = f"i-{self._counter:05d}"
        container = host.engine.create(
            name=instance_id,
            policy=self.profile.policy_factory(),
            cpus=want,
            memory_mb=self.profile.memory_mb_per_instance,
        )
        instance = Instance(
            instance_id=instance_id,
            tenant=tenant,
            container=container,
            host_index=host.index,
            launched_at=self.clock.now,
            _cpu_ns_at_launch=container.cpu_usage_ns,
        )
        self._instances[instance_id] = instance
        self.launch_log.append(
            ("launch", instance_id, tenant, host.index, want)
        )
        return instance

    def terminate_instance(self, instance: Instance) -> None:
        """Terminate an instance and stop its billing meter."""
        if self.frozen_reason is not None:
            raise CloudError(f"cloud is frozen: {self.frozen_reason}")
        if instance.terminated:
            raise CloudError(f"already terminated: {instance.instance_id}")
        host = self.hosts[instance.host_index]
        host.engine.remove(instance.container)
        instance.terminated = True
        del self._instances[instance.instance_id]
        self.launch_log.append(
            ("terminate", instance.instance_id, instance.host_index)
        )

    def instances_of(self, tenant: str) -> List[Instance]:
        """All live instances of one tenant."""
        return [i for i in self._instances.values() if i.tenant == tenant]

    def bill(self, tenant: str) -> float:
        """Utilization-based bill in dollars for a tenant's live instances."""
        cpu_hours = sum(
            i.billed_cpu_seconds / 3600.0 for i in self.instances_of(tenant)
        )
        return cpu_hours * self.profile.price_per_cpu_hour

    # ------------------------------------------------------------------

    def tick(self, dt: float) -> None:
        """Advance the shared clock and every host kernel by ``dt``."""
        self.clock.advance(dt)
        for host in self.hosts:
            host.kernel.tick(dt)

    def run(self, seconds: float, dt: float = 1.0, on_tick=None) -> None:
        """Run the whole cloud forward."""
        if seconds <= 0:
            raise CloudError(f"run needs positive duration: {seconds}")
        remaining = seconds
        while remaining > 1e-9:
            step = min(dt, remaining)
            self.tick(step)
            if on_tick is not None:
                on_tick(self)
            remaining -= step

    def host_of(self, instance: Instance) -> CloudHost:
        """Provider-side lookup (not available to tenants)."""
        return self.hosts[instance.host_index]
