#!/usr/bin/env python3
"""The two-stage defense, end to end (Section V).

Stage 1: generate a masking policy from the detector's report and show
what it blocks — and what legitimate tooling it breaks.

Stage 2: train the Formula 2 power model, install the power-based
namespace, and demonstrate the three design goals: accuracy (Formula 4's
ξ), transparency (an idle container cannot see a co-resident surge), and
the unchanged interface.

Run:  python examples/defense_demo.py
"""

from repro.defense.calibration import CalibratedAttribution
from repro.defense.masking import (
    functionality_impact,
    generate_masking_policy,
    verify_masking,
)
from repro.defense.modeling import PowerModeler, TrainingHarness
from repro.defense.powerns import PowerNamespaceDriver
from repro.detection.crossvalidate import CrossValidator
from repro.errors import PermissionDeniedError
from repro.kernel.kernel import Machine
from repro.kernel.rapl import unwrap_delta
from repro.runtime.benchmarks import SPEC_BENCHMARKS
from repro.runtime.engine import ContainerEngine

ENERGY = "/sys/class/powercap/intel-rapl:0/energy_uj"

# ---------------------------------------------------------------- stage 1
print("=" * 70)
print("STAGE 1: masking the discovered channels")
print("=" * 70)
machine = Machine(seed=21)
engine = ContainerEngine(machine.kernel)
probe = engine.create(name="probe")
machine.run(3, dt=1.0)
report = CrossValidator(engine.vfs, probe).run()
policy = generate_masking_policy(report)
print(f"policy generated: {len(policy.rules)} deny rules")

masked = engine.create(name="masked-tenant", policy=policy)
print(f"re-running the detector against the masked container: "
      f"{len(verify_masking(engine.vfs, masked))} leaks remain")
try:
    masked.read(ENERGY)
except PermissionDeniedError:
    print("RAPL channel now returns EACCES inside the container")

print("\n...but the quick fix has a price (broken tenant tooling):")
for path, use in sorted(functionality_impact(policy).items()):
    print(f"  {path:<18} breaks {use}")

# ---------------------------------------------------------------- stage 2
print()
print("=" * 70)
print("STAGE 2: the power-based namespace")
print("=" * 70)
print("training Formula 2 on the modelling benchmarks "
      "(idle loop / prime / libquantum / stress)...")
harness = TrainingHarness(seed=22, window_s=5.0, windows_per_benchmark=8)
harness.run_all()
model = PowerModeler(form="paper").fit(harness)
print(f"  core model R^2 = {model.core_model.r_squared:.4f}, "
      f"dram R^2 = {model.dram_model.r_squared:.4f}, "
      f"lambda = {model.lambda_watts:.1f} W")

defended = Machine(seed=23)
defended_engine = ContainerEngine(defended.kernel)
driver = PowerNamespaceDriver(defended.kernel, model,
                              attribution_factory=CalibratedAttribution)
driver.watch_engine(defended_engine)
print("driver installed: RAPL reads now pass through the namespace hook")

worker = defended_engine.create(name="worker", cpus=4)
observer = defended_engine.create(name="observer", cpus=2)
defended.run(5, dt=1.0)


def watts(reader, seconds=10):
    e0 = int(reader.read(ENERGY))
    defended.run(seconds, dt=1.0)
    return unwrap_delta(int(reader.read(ENERGY)), e0) / 1e6 / seconds


print("\ntransparency check (observer idle, worker about to run mcf):")
print(f"  observer reading before surge: {watts(observer):.1f} W")
for core in range(4):
    worker.exec(f"mcf-{core}", workload=SPEC_BENCHMARKS["429.mcf"].workload())
print(f"  observer reading during surge: {watts(observer):.1f} W "
      f"(host truly at {defended.kernel.host_package_watts():.1f} W)")
print("  -> the observer cannot detect the co-resident surge any more")

print("\naccuracy check (Formula 4) while the worker runs alone:")
pkg = defended.kernel.rapl.package(0).package
h0, c0 = pkg.energy_uj, int(worker.read(ENERGY))
defended.run(60, dt=1.0)
e_rapl = unwrap_delta(pkg.energy_uj, h0) / 1e6
e_container = unwrap_delta(int(worker.read(ENERGY)), c0) / 1e6
xi = abs(e_rapl - e_container) / e_rapl
print(f"  host RAPL: {e_rapl:.0f} J, container reading: {e_container:.0f} J, "
      f"xi = {xi:.4f} (paper bound: 0.05)")
