#!/usr/bin/env python3
"""Leak scan: the paper's full detection pipeline (Figure 1).

Left side of Figure 1: cross-validate every pseudo-file on a local
testbed, classify each as leaking / namespaced / volatile, and assess the
channels' co-residence capability (the U/V/M metrics of Table II).

Right side: probe the five commercial cloud profiles (CC1–CC5) and print
the availability matrix (Table I).

Run:  python examples/leak_scan.py
"""

from repro.detection.crossvalidate import CrossValidator, LeakClass
from repro.detection.inspector import format_table1, inspect_all
from repro.detection.metrics import ChannelAssessor, Manipulation
from repro.kernel.kernel import Machine
from repro.runtime.cloud import PROVIDER_PROFILES, ContainerCloud
from repro.runtime.engine import ContainerEngine

# --- local testbed discovery --------------------------------------------
print("=" * 70)
print("STEP 1: cross-validation on the local testbed (Docker defaults)")
print("=" * 70)
machine = Machine(seed=11)
engine = ContainerEngine(machine.kernel)
probe = engine.create(name="probe")
machine.run(5, dt=1.0)
report = CrossValidator(engine.vfs, probe).run()

for leak_class in LeakClass:
    paths = report.paths_in(leak_class)
    print(f"{leak_class.value:<12} {len(paths):>4} files")
print(f"\ndistinct leakage channels found: {len(report.leaking_channels())}")

# --- channel capability assessment (Table II) ----------------------------
print()
print("=" * 70)
print("STEP 2: U/V/M assessment and ranking (Table II)")
print("=" * 70)
assessor = ChannelAssessor(seed=11, snapshots=8, interval_s=5.0)
rows = assessor.assess_all()
glyph = {Manipulation.DIRECT: "●", Manipulation.INDIRECT: "◐",
         Manipulation.NONE: "○"}
print(f"{'rank':<5}{'channel':<46}{'U':<3}{'V':<3}{'M':<3}{'group'}")
for rank, a in enumerate(rows, start=1):
    print(f"{rank:<5}{a.channel_id:<46}"
          f"{'●' if a.unique else '○':<3}{'●' if a.varies else '○':<3}"
          f"{glyph[a.manipulation]:<3}{a.group.value}")

# --- cloud inspection (Table I) ------------------------------------------
print()
print("=" * 70)
print("STEP 3: inspecting the five provider profiles (Table I)")
print("=" * 70)
clouds = {
    name: ContainerCloud(profile, seed=11, servers=1)
    for name, profile in PROVIDER_PROFILES.items()
}
reports = inspect_all(clouds)
print(format_table1(reports))
print("\nlegend: ● available  ◐ partial (customized view)  ○ masked/absent")
