#!/usr/bin/env python3
"""The synergistic power attack, end to end (Section IV).

An attacker tenant on a CC1-style container cloud:

1. covers the fleet: one instance per physical server, verified purely
   through leaked channels (boot_id fingerprints),
2. reconnoiters boot proximity via /proc/uptime (rack adjacency),
3. monitors host power through the leaked RAPL channel — at near-zero
   utilization cost,
4. superimposes synchronized power-virus bursts on a benign crest and
   compares against a blind periodic attacker.

Run:  python examples/synergistic_attack.py   (~2 minutes of wall time)
"""

import statistics

from repro.attack.monitor import CrestDetector
from repro.attack.strategies import PeriodicAttack, SynergisticAttack
from repro.datacenter.simulation import DatacenterSimulation
from repro.datacenter.tenants import DiurnalProfile
from repro.coresidence.uptime import boot_proximity, read_uptime

TENANTS = DiurnalProfile(base_cores=1.0, peak_cores=1.5, bursts_per_day=200.0,
                         burst_cores=5.0, burst_duration_s=45.0, noise=0.05)
SERVERS = 8


def build_attacked_fleet(seed):
    sim = DatacenterSimulation(servers=SERVERS, seed=seed,
                               sample_interval_s=1.0, tenant_profile=TENANTS)
    cloud = sim.cloud
    instances, covered, launches = [], set(), 0
    while len(covered) < SERVERS:
        inst = cloud.launch_instance("attacker")
        launches += 1
        if inst.host_index in covered:
            cloud.terminate_instance(inst)
        else:
            covered.add(inst.host_index)
            instances.append(inst)
    return sim, instances, launches


print("STEP 1: covering the fleet with instances (fingerprint-verified)")
sim, instances, launches = build_attacked_fleet(seed=105)
print(f"  {SERVERS} servers covered in {launches} launches")

print("\nSTEP 2: reconnaissance via /proc/uptime")
observations = [(i.instance_id, read_uptime(i)) for i in instances]
adjacent_pairs = sum(
    1
    for k, (_, a) in enumerate(observations)
    for _, b in observations[k + 1:]
    if boot_proximity(a, b, window_s=300.0)
)
print(f"  boot-proximate server pairs (same maintenance window): "
      f"{adjacent_pairs}/{SERVERS * (SERVERS - 1) // 2}")

print("\nSTEP 3: learning the benign power pattern through the RAPL leak")
sim.run(600, dt=1.0)
print(f"  benign aggregate: trough {sim.aggregate_trace.trough:.0f} W, "
      f"peak {sim.aggregate_trace.peak:.0f} W")

print("\nSTEP 4: synergistic strike vs blind periodic baseline (3000 s)")
synergistic = SynergisticAttack(
    sim, instances, burst_s=30.0, cooldown_s=400.0, max_trials=2, learn_s=900.0,
    detector_factory=lambda: CrestDetector(window=4000, threshold_fraction=0.88,
                                           min_band_watts=30.0),
)
out_s = synergistic.run(3000)

sim_p, instances_p, _ = build_attacked_fleet(seed=105)
sim_p.run(600, dt=1.0)
periodic = PeriodicAttack(sim_p, instances_p, burst_s=30.0, period_s=300.0)
out_p = periodic.run(3000)

print(f"\n{'':>14}{'peak W':>9}{'trials':>8}{'cpu-s':>9}{'bill $':>9}")
for out in (out_s, out_p):
    print(f"{out.strategy:>14}{out.peak_watts:>9.0f}{out.trials:>8}"
          f"{out.attacker_cpu_seconds:>9.0f}{out.bill_dollars:>9.4f}")
mean_s = statistics.mean(out_s.spike_watts) if out_s.spike_watts else 0.0
mean_p = statistics.mean(out_p.spike_watts)
print(f"\nmean spike height: synergistic {mean_s:.0f} W vs periodic "
      f"{mean_p:.0f} W")
print("the insider (leaked) power signal buys higher spikes from fewer, "
      "cheaper trials.")
