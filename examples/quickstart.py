#!/usr/bin/env python3
"""Quickstart: boot a simulated host, start containers, observe the leaks.

Five minutes with the library:

1. boot a simulated Linux host (kernel 4.7-era, Docker-like engine),
2. run two tenant containers,
3. read pseudo-files from inside a container and see which ones expose
   host state (the paper's Table I channels),
4. run the cross-validation detector and print its verdicts.

Run:  python examples/quickstart.py
"""

from repro.detection.crossvalidate import CrossValidator, LeakClass
from repro.kernel.kernel import Machine
from repro.runtime.engine import ContainerEngine
from repro.runtime.workload import constant

# --- 1. boot a host -----------------------------------------------------
machine = Machine(seed=7)
kernel = machine.kernel
engine = ContainerEngine(kernel)
print(f"booted {kernel.config.hostname}: {kernel.config.total_cores} cores, "
      f"{kernel.config.memory_mb} MB RAM, kernel {kernel.config.kernel_version}")

# --- 2. two tenants -----------------------------------------------------
alice = engine.create(name="alice", cpus=4)
bob = engine.create(name="bob", cpus=4)
alice.exec("webapp", workload=constant("webapp", cpu_demand=0.8, ipc=1.4,
                                       cache_miss_per_kinst=3.0, rss_mb=400))
machine.run(30, dt=1.0)

# --- 3. what does bob see? ----------------------------------------------
print("\nbob reads pseudo-files (bob runs NOTHING, alice is busy):")
for path in ("/proc/uptime", "/proc/loadavg",
             "/proc/sys/kernel/random/boot_id",
             "/sys/class/powercap/intel-rapl:0/energy_uj",
             "/sys/fs/cgroup/net_prio/net_prio.ifpriomap"):
    content = bob.read(path).strip().replace("\n", " | ")
    print(f"  {path:<50} -> {content[:60]}")

print("\nnamespaced files, for contrast (bob sees only his own):")
for path in ("/proc/sys/kernel/hostname", "/proc/net/dev"):
    first_line = bob.read(path).strip().splitlines()[0]
    print(f"  {path:<50} -> {first_line[:60]}")

# bob watches alice's power through the RAPL leak
energy_path = "/sys/class/powercap/intel-rapl:0/energy_uj"
e0 = int(bob.read(energy_path))
machine.run(10, dt=1.0)
e1 = int(bob.read(energy_path))
print(f"\nbob derives host power from the RAPL leak: "
      f"{(e1 - e0) / 1e6 / 10:.1f} W (alice's webapp included)")

# --- 4. run the paper's detector ----------------------------------------
report = CrossValidator(engine.vfs, bob).run()
leaks = report.leaks
namespaced = report.paths_in(LeakClass.NAMESPACED)
print(f"\ncross-validation over {len(report.verdicts)} pseudo-files:")
print(f"  leaking host state : {len(leaks)} files "
      f"({len(report.leaking_channels())} channels)")
print(f"  properly namespaced: {len(namespaced)} files -> {namespaced}")
print("\nfirst ten leaking paths:")
for path in leaks[:10]:
    print(f"  {path}")
