#!/usr/bin/env python3
"""Covert channel over a leaked pseudo-file (Table II's M=◐, weaponized).

Two colluding containers with no shared volume, no network path, and no
IPC — on a vanilla kernel — exchange a byte through the host-global
process counters in ``/proc/loadavg``: the sender modulates pinned CPU
load; the receiver demodulates the running-task count.

Then the stage-2 defense point: masking the carrier file (or namespacing
it) severs the channel.

Run:  python examples/covert_channel.py
"""

from repro.coresidence.covert import (
    CovertConfig,
    CovertReceiver,
    CovertSender,
    run_transfer,
)
from repro.errors import AttackError
from repro.kernel.kernel import Machine
from repro.runtime.engine import ContainerEngine
from repro.runtime.policy import MaskingPolicy

machine = Machine(seed=33, spawn_daemons=False)
engine = ContainerEngine(machine.kernel)
sender_c = engine.create(name="sender", cpus=4)
receiver_c = engine.create(name="receiver", cpus=2)
machine.run(5, dt=1.0)

message = 0b10110010
bits = [(message >> (7 - i)) & 1 for i in range(8)]
config = CovertConfig()

print(f"transmitting byte 0x{message:02x} as bits {bits}")
print(f"carrier: {config.carrier_cores}-core load bursts, "
      f"{config.bits_per_second:.2f} bit/s over {config.path}")

received = run_transfer(
    lambda s: machine.run(s, dt=1.0),
    CovertSender(sender_c, config),
    CovertReceiver(receiver_c, config),
    bits,
)
value = sum(bit << (7 - i) for i, bit in enumerate(received))
errors = sum(a != b for a, b in zip(bits, received))
print(f"received bits {received} -> 0x{value:02x} ({errors} bit errors)")

print("\nnow with the carrier file masked (stage-1 defense):")
blind = engine.create(
    name="blind-receiver", policy=MaskingPolicy().deny("/proc/loadavg")
)
try:
    CovertReceiver(blind, config).sample()
except AttackError as exc:
    print(f"  receiver fails: {exc}")
    print("  the covert channel is severed.")
